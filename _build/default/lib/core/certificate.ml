open Res_db

type t = {
  query : Res_cq.Query.t;
  ijp : Database.t;
  endpoint_a : Database.fact;
  endpoint_b : Database.fact;
  cost : int;
}

let of_ijp db query ~a ~b =
  if Ijp.check db query a b <> Ok () then None
  else if not (Ijp.composable db query ~a ~b) then None
  else begin
    match Exact.value db query with
    | Some c -> Some { query; ijp = db; endpoint_a = a; endpoint_b = b; cost = c }
    | None -> None
  end

let search ?(max_joins = 3) query =
  match Ijp.search ~strict:true ~max_joins query with
  | Some (db, a, b) -> of_ijp db query ~a ~b
  | None -> None

let reduce cert graph ~k =
  let db =
    Ijp.vc_instance cert.ijp cert.query ~a:cert.endpoint_a ~b:cert.endpoint_b ~graph
  in
  {
    Reductions.db;
    query = cert.query;
    k = (List.length graph * (cert.cost - 1)) + k;
    description =
      Printf.sprintf "VC -> RES(%s) via discovered IJP (Section 9)"
        (Res_cq.Query.to_string cert.query);
  }

let default_graphs =
  [
    [ (1, 2); (2, 3); (3, 1) ];
    [ (1, 2); (2, 3); (3, 4) ];
    [ (1, 2); (1, 3); (1, 4); (1, 5) ];
    [ (1, 2); (1, 3); (1, 4); (2, 3); (2, 4); (3, 4) ];
  ]

let verify ?(graphs = default_graphs) cert =
  List.for_all
    (fun g ->
      let vc = Res_graph.Vertex_cover.min_cover_size g in
      let inst = reduce cert g ~k:vc in
      Exact.value inst.Reductions.db inst.Reductions.query = Some inst.Reductions.k)
    graphs
