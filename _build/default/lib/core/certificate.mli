(** Automated hardness certificates (the programme of paper Section 9).

    The paper hopes that hardness proofs can be {e searched for}: find an
    Independent Join Path for the query, then a generalized Vertex-Cover
    reduction follows mechanically (Figure 8 / Conjecture 49).  This module
    realizes that pipeline executably: given a query, it produces — when it
    can — a certificate consisting of a composable IJP plus a function that
    turns any Vertex-Cover instance into a resilience instance whose
    threshold tracks the cover size.

    A certificate is {e checkable evidence}, not a proof: its validity is
    established empirically on the instances it generates (the test suite
    verifies ρ = |E|·(c−1) + VC(G) on a family of graphs).  For PTIME
    queries the strict search provably-in-practice finds nothing (see
    EXPERIMENTS.md on the composability gap). *)

open Res_db

type t = {
  query : Res_cq.Query.t;
  ijp : Database.t;  (** the discovered IJP database *)
  endpoint_a : Database.fact;
  endpoint_b : Database.fact;
  cost : int;  (** c = ρ of the IJP; each edge copy contributes c−1 *)
}

val search : ?max_joins:int -> Res_cq.Query.t -> t option
(** Strict (composable) IJP search.  [None] for queries without a
    discoverable certificate — in particular the PTIME queries. *)

val of_ijp :
  Database.t -> Res_cq.Query.t -> a:Database.fact -> b:Database.fact -> t option
(** Package a known IJP (e.g. the paper's Example 59) as a certificate,
    validating composability first. *)

val reduce : t -> Res_graph.Vertex_cover.graph -> k:int -> Reductions.instance
(** The generalized VC reduction: G has a vertex cover of size ≤ k iff the
    produced instance (D, |E|·(c−1) + k) is in RES(q). *)

val verify : ?graphs:Res_graph.Vertex_cover.graph list -> t -> bool
(** Re-check the certificate on a family of graphs by exact solving. *)
