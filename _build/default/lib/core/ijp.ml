open Res_db

type violation = { condition : int; message : string }

module Vset = Set.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

let constants tuple = Vset.of_list tuple

let strict_subset a b = Vset.subset a b && not (Vset.equal a b)

(* Strictly increasing index subsequences of [0..n-1] of length k. *)
let rec index_subseqs n k start =
  if k = 0 then [ [] ]
  else if start >= n then []
  else
    List.concat_map
      (fun i -> List.map (fun rest -> i :: rest) (index_subseqs n (k - 1) (i + 1)))
      (List.init (n - start) (fun d -> start + d))

let err condition fmt = Printf.ksprintf (fun message -> Error { condition; message }) fmt

let check db (query : Res_cq.Query.t) (fa : Database.fact) (fb : Database.fact) =
  let m = List.length (Res_cq.Query.atoms query) in
  let ca = constants fa.tuple and cb = constants fb.tuple in
  if fa.rel <> fb.rel then err 1 "endpoint tuples belong to different relations"
  else if Res_cq.Query.is_exogenous query fa.rel then err 1 "endpoint relation is exogenous"
  else if Vset.subset ca cb || Vset.subset cb ca then
    err 1 "endpoint tuples are comparable (a ⊆ b or b ⊆ a)"
  else begin
    let witnesses = Eval.witnesses db query in
    let containing f =
      List.filter (fun (w : Eval.witness) -> Database.Fact_set.mem f w.facts) witnesses
    in
    match (containing fa, containing fb) with
    | [ wa ], [ wb ] ->
      if Database.Fact_set.cardinal wa.facts <> m then
        err 2 "witness of R(a) uses fewer than m distinct tuples"
      else if Database.Fact_set.cardinal wb.facts <> m then
        err 2 "witness of R(b) uses fewer than m distinct tuples"
      else begin
        (* condition 3: no endogenous sub-tuple of a or b *)
        let bad_endo =
          List.find_opt
            (fun (f : Database.fact) ->
              (not (Res_cq.Query.is_exogenous query f.rel))
              &&
              let c = constants f.tuple in
              strict_subset c ca || strict_subset c cb)
            (Database.facts db)
        in
        match bad_endo with
        | Some f ->
          err 3 "endogenous tuple %s has constants strictly inside an endpoint"
            (Format.asprintf "%a" Database.pp_fact f)
        | None -> begin
          (* condition 4: exogenous subvector symmetry *)
          let missing =
            List.find_map
              (fun rel ->
                if Res_cq.Query.is_exogenous query rel then begin
                  let tuples = Database.tuples_of db rel in
                  let arity = match tuples with t :: _ -> List.length t | [] -> 0 in
                  let idxs = index_subseqs (List.length fa.tuple) arity 0 in
                  List.find_map
                    (fun idx ->
                      let proj tuple = List.map (List.nth tuple) idx in
                      let d = proj fa.tuple and e = proj fb.tuple in
                      if List.mem d tuples && not (List.mem e tuples) then
                        Some (rel, d, e)
                      else if List.mem e tuples && not (List.mem d tuples) then
                        Some (rel, e, d)
                      else None)
                    idxs
                end
                else None)
              (Database.relations db)
          in
          match missing with
          | Some (rel, _, e) ->
            err 4 "exogenous %s misses the mirrored subvector tuple %s(%s)" rel rel
              (String.concat "," (List.map Value.to_string e))
          | None -> begin
            (* condition 5: the or-property *)
            match Exact.value db query with
            | None -> err 5 "instance is unbreakable"
            | Some c ->
              let drop facts = Exact.value (Database.remove_all db facts) query in
              let expect label facts =
                match drop facts with
                | Some v when v = c - 1 -> Ok ()
                | Some v -> err 5 "removing %s gives ρ = %d, expected %d" label v (c - 1)
                | None -> err 5 "removing %s makes the instance unbreakable" label
              in
              let ( >>= ) r f = match r with Ok () -> f () | Error e -> Error e in
              expect "R(a)" [ fa ] >>= fun () ->
              expect "R(b)" [ fb ] >>= fun () ->
              expect "both" [ fa; fb ]
          end
        end
      end
    | was, _ when List.length was <> 1 ->
      err 2 "R(a) participates in %d witnesses, expected 1" (List.length was)
    | _, wbs -> err 2 "R(b) participates in %d witnesses, expected 1" (List.length wbs)
  end

let find_pair db query =
  let endo = Database.endogenous_facts db query in
  let rec pairs = function
    | [] -> None
    | (f : Database.fact) :: rest -> begin
      match
        List.find_opt
          (fun (g : Database.fact) -> g.rel = f.rel && check db query f g = Ok ())
          rest
      with
      | Some g -> Some (f, g)
      | None -> pairs rest
    end
  in
  pairs endo

let is_ijp db query = find_pair db query <> None

let canonical_database (query : Res_cq.Query.t) ~copy =
  List.fold_left
    (fun db (atom : Res_cq.Atom.t) ->
      Database.add_row db atom.rel
        (List.map (fun var -> Value.tag (string_of_int copy) (Value.s var)) atom.args))
    Database.empty (Res_cq.Query.atoms query)

(* Set partitions in restricted-growth-string order. *)
let partitions elements =
  let arr = Array.of_list elements in
  let n = Array.length arr in
  if n = 0 then Seq.return []
  else begin
    (* state: rgs array; enumerate lazily *)
    let rec next rgs () =
      (* convert to blocks *)
      let blocks = Hashtbl.create 8 in
      Array.iteri
        (fun i g ->
          let cur = try Hashtbl.find blocks g with Not_found -> [] in
          Hashtbl.replace blocks g (arr.(i) :: cur))
        rgs;
      let n_blocks = Hashtbl.length blocks in
      let result =
        List.init n_blocks (fun g -> List.rev (Hashtbl.find blocks g))
      in
      (* advance restricted growth string *)
      let rgs' = Array.copy rgs in
      let rec advance i =
        if i = 0 then None
        else begin
          let max_prefix = Array.fold_left max 0 (Array.sub rgs' 0 i) in
          if rgs'.(i) <= max_prefix then begin
            rgs'.(i) <- rgs'.(i) + 1;
            Array.fill rgs' (i + 1) (n - i - 1) 0;
            Some rgs'
          end
          else advance (i - 1)
        end
      in
      match advance (n - 1) with
      | Some rgs' -> Seq.Cons (result, next rgs')
      | None -> Seq.Cons (result, fun () -> Seq.Nil)
    in
    next (Array.make n 0)
  end

let apply_partition db blocks =
  let rename = Hashtbl.create 16 in
  List.iter
    (fun block ->
      match block with
      | [] -> ()
      | rep :: _ -> List.iter (fun v -> Hashtbl.replace rename v rep) block)
    blocks;
  let map v = try Hashtbl.find rename v with Not_found -> v in
  List.fold_left
    (fun acc (f : Database.fact) -> Database.add_row acc f.rel (List.map map f.tuple))
    Database.empty (Database.facts db)

let union_dbs dbs = List.fold_left Database.union Database.empty dbs

let vc_instance db (query : Res_cq.Query.t) ~(a : Database.fact) ~(b : Database.fact)
    ~(graph : Res_graph.Vertex_cover.graph) =
  ignore query;
  let ca = constants a.tuple and cb = constants b.tuple in
  if not (Vset.is_empty (Vset.inter ca cb)) then
    invalid_arg "Ijp.vc_instance: endpoint tuples share constants";
  (* Per vertex u, the endpoint tuple is the a-tuple with constants tagged
     by u; per edge, internal constants are tagged by the edge id. *)
  let vertex_const u c = Value.tag (Printf.sprintf "v%d" u) c in
  let facts = Database.facts db in
  let copy_for_edge edge_id (u, w) =
    let rename c =
      if Vset.mem c ca then vertex_const u c
      else if Vset.mem c cb then
        (* align b-constants with the target vertex's a-identity: the i-th
           position of b maps to the i-th position of a *)
        (let rec find i = function
           | [] -> Value.tag (Printf.sprintf "e%d" edge_id) c
           | x :: rest ->
             if Value.equal x c then vertex_const w (List.nth a.tuple i) else find (i + 1) rest
         in
         find 0 b.tuple)
      else Value.tag (Printf.sprintf "e%d" edge_id) c
    in
    List.map (fun (f : Database.fact) -> Database.fact f.rel (List.map rename f.tuple)) facts
  in
  List.concat (List.mapi copy_for_edge graph) |> Database.of_facts

let probe_graphs =
  [
    [ (1, 2); (2, 3); (3, 1) ] (* K3 *);
    [ (1, 2); (2, 3); (3, 4) ] (* P4 *);
    [ (1, 2); (1, 3); (1, 4); (2, 3); (2, 4); (3, 4) ] (* K4 *);
  ]

let composable db query ~a ~b =
  let ca = constants a.Database.tuple and cb = constants b.Database.tuple in
  Vset.is_empty (Vset.inter ca cb)
  &&
  match Exact.value db query with
  | None -> false
  | Some c ->
    List.for_all
      (fun graph ->
        let inst = vc_instance db query ~a ~b ~graph in
        let vc = Res_graph.Vertex_cover.min_cover_size graph in
        Exact.value inst query = Some ((List.length graph * (c - 1)) + vc))
      probe_graphs

let search ?(max_joins = 3) ?(max_partitions = 200_000) ?(strict = false) query =
  let rec try_k k =
    if k > max_joins then None
    else begin
      let base = union_dbs (List.init k (fun i -> canonical_database query ~copy:i)) in
      let consts = Database.active_domain base in
      let found = ref None in
      let count = ref 0 in
      Seq.iter
        (fun blocks ->
          if !found = None && !count < max_partitions then begin
            incr count;
            let db = apply_partition base blocks in
            match find_pair db query with
            | Some (fa, fb) ->
              if (not strict) || composable db query ~a:fa ~b:fb then
                found := Some (db, fa, fb)
            | None -> ()
          end)
        (partitions consts);
      match !found with Some r -> Some r | None -> try_k (k + 1)
    end
  in
  try_k 1

let count_partitions_tried query ~max_joins =
  let base = union_dbs (List.init max_joins (fun i -> canonical_database query ~copy:i)) in
  let consts = Database.active_domain base in
  Seq.fold_left (fun acc _ -> acc + 1) 0 (partitions consts)

