open Res_db
module Cnf = Res_sat.Cnf

type instance = {
  db : Database.t;
  query : Res_cq.Query.t;
  k : int;
  description : string;
}

let v fmt = Printf.ksprintf Value.s fmt
let q = Res_cq.Parser.query

(* Pad clauses to exactly three literals by repeating the last one; the
   gadgets give each position its own clause-side values, so duplicated
   literals are harmless. *)
let clauses3 (f : Cnf.t) =
  List.map
    (fun c ->
      match c with
      | [ l ] -> (l, l, l)
      | [ l1; l2 ] -> (l1, l2, l2)
      | [ l1; l2; l3 ] -> (l1, l2, l3)
      | _ -> invalid_arg "Reductions: clause with more than 3 literals")
    f.clauses

(* ------------------------------------------------------------------ *)
(* Proposition 9: vertex cover is exactly RES(qvc).                    *)

let vc_to_qvc g ~k =
  let db =
    List.fold_left
      (fun db (a, b) ->
        let db = Database.add_row db "R" [ Value.i a ] in
        let db = Database.add_row db "R" [ Value.i b ] in
        Database.add_row db "S" [ Value.i a; Value.i b ])
      Database.empty g
  in
  { db; query = q "R(x), S(x,y), R(y)"; k; description = "VC -> RES(qvc) (Prop 9)" }

(* ------------------------------------------------------------------ *)
(* Theorems 27/28: VC -> RES(q) for queries containing a path.         *)

let pair_value a b tag = Value.tag tag (Value.pair (Value.i a) (Value.i b))

let vc_to_unary_path g ~k (query : Res_cq.Query.t) =
  let r, _ =
    match Patterns.self_join query with
    | Some sj -> sj
    | None -> invalid_arg "vc_to_unary_path: no self-join"
  in
  if Res_cq.Query.arity_of query r <> 1 then invalid_arg "vc_to_unary_path: R not unary";
  (* The two path endpoint variables: those of the first two R-atoms. *)
  let x, y =
    match Res_cq.Query.atoms_of_rel query r with
    | a1 :: a2 :: _ -> (List.hd a1.args, List.hd a2.args)
    | _ -> invalid_arg "vc_to_unary_path: fewer than two R-atoms"
  in
  let t var a b =
    if var = x then Value.i a else if var = y then Value.i b else pair_value a b var
  in
  let db =
    List.fold_left
      (fun db (a, b) ->
        List.fold_left
          (fun db (atom : Res_cq.Atom.t) ->
            Database.add_row db atom.rel (List.map (fun var -> t var a b) atom.args))
          db (Res_cq.Query.atoms query))
      Database.empty g
  in
  { db; query; k; description = "VC -> RES(q) via unary path (Thm 27)" }

let vc_to_binary_path g ~k (query : Res_cq.Query.t) =
  let r, r_atoms =
    match Patterns.self_join query with
    | Some sj -> sj
    | None -> invalid_arg "vc_to_binary_path: no self-join"
  in
  if Res_cq.Query.arity_of query r <> 2 then invalid_arg "vc_to_binary_path: R not binary";
  (* Equivalence classes of variables under R-atom connectivity. *)
  let vars = Res_cq.Query.vars query in
  let uf = Res_graph.Union_find.create (List.length vars) in
  let idx var =
    let rec find i = function
      | [] -> invalid_arg "vc_to_binary_path"
      | w :: rest -> if w = var then i else find (i + 1) rest
    in
    find 0 vars
  in
  List.iter
    (fun (a : Res_cq.Atom.t) ->
      match a.args with
      | [ u; w ] -> Res_graph.Union_find.union uf (idx u) (idx w)
      | _ -> ())
    r_atoms;
  (* Representatives of the first two R-atom components. *)
  let x_class =
    match r_atoms with a :: _ -> Res_graph.Union_find.find uf (idx (List.hd a.args)) | [] -> assert false
  in
  let z_class =
    match
      List.find_opt
        (fun (a : Res_cq.Atom.t) ->
          Res_graph.Union_find.find uf (idx (List.hd a.args)) <> x_class)
        r_atoms
    with
    | Some a -> Res_graph.Union_find.find uf (idx (List.hd a.args))
    | None -> invalid_arg "vc_to_binary_path: R-atoms all connected (no path)"
  in
  let t var a b =
    let c = Res_graph.Union_find.find uf (idx var) in
    if c = x_class then Value.i a else if c = z_class then Value.i b else pair_value a b var
  in
  let db =
    List.fold_left
      (fun db (a, b) ->
        List.fold_left
          (fun db (atom : Res_cq.Atom.t) ->
            Database.add_row db atom.rel (List.map (fun var -> t var a b) atom.args))
          db (Res_cq.Query.atoms query))
      Database.empty g
  in
  { db; query; k; description = "VC -> RES(q) via binary path (Thm 28)" }

(* ------------------------------------------------------------------ *)
(* Proposition 10 + Lemmas 52-54: 3SAT -> RES(qchain) and expansions.  *)

(* Variable gadget (variable i, copies j in [m]): a cycle of 2m tuples
     T(i,j) = R(x_i^j, xbar_i^j)     "choose all T's  <=>  x_i := true"
     F(i,j) = R(xbar_i^j, x_i^{j+1})
   Clause gadget (clause j, positions a/b/c): a 3-cycle with spikes and a
   connector per position; the connector's incoming witness dies exactly
   when the literal is satisfied.  Satisfied clauses cost 5, unsatisfied 6;
   each variable costs m.  kψ = (n+5)m. *)
let sat3_to_chain ?(with_a = false) ?(with_b = false) ?(with_c = false) (f : Cnf.t) =
  let m = List.length f.clauses in
  let n = f.n_vars in
  if m = 0 then invalid_arg "sat3_to_chain: empty formula";
  let pos i j = v "x%d_%d" i j in
  let neg i j = v "xbar%d_%d" i j in
  let facts = ref [] in
  let add_r a b = facts := Database.fact "R" [ a; b ] :: !facts in
  for i = 1 to n do
    for j = 1 to m do
      add_r (pos i j) (neg i j);
      (* T(i,j): delete all T's  <=>  x_i := true *)
      add_r (neg i j) (pos i (if j = m then 1 else j + 1)) (* F(i,j) *)
    done
  done;
  (* Three clause-gadget shapes, depending on which ends of the chain the
     expansion bounds with endogenous unary atoms:
       base      (qchain, qbchain):   connectors leave the variable cycle
                                      into the spikes (Fig 10);
       lemma53   (qachain, qabchain): connectors leave a fresh p'' node
                                      into the variable cycle (Fig 11);
       lemma54   (qacchain, qabcchain): spike chains p' -> *p -> p'' with
                                      C(p''), connectors from the variable
                                      cycle into p'' (Fig 12).
     The C-only variants (qcchain, qbcchain) are the global mirror of the
     A-only ones. *)
  let shape =
    match (with_a, with_c) with
    | false, false -> `Base
    | true, false -> `Lemma53
    | false, true -> `Lemma53_mirror
    | true, true -> `Lemma54
  in
  List.iteri
    (fun j0 (l1, l2, l3) ->
      let j = j0 + 1 in
      let node p = v "%s_%d" p j in
      (* triangle, shared by all shapes *)
      add_r (node "ka") (node "kb");
      add_r (node "kb") (node "kc");
      add_r (node "kc") (node "ka");
      (* spikes *)
      add_r (node "ka'") (node "ka");
      add_r (node "kb'") (node "kb");
      add_r (node "kc'") (node "kc");
      let position lit p =
        let i = Cnf.var lit in
        match shape with
        | `Base ->
          (* connector from the variable cycle into the spike; its incoming
             witness dies iff the literal is satisfied *)
          let start = if lit > 0 then neg i j else pos i j in
          add_r start (node (p ^ "'"))
        | `Lemma53 ->
          (* fresh p'' with edges into the spike head and into the variable
             cycle; the variable-side witness dies iff the literal holds *)
          add_r (node (p ^ "''")) (node (p ^ "'"));
          let target = if lit > 0 then pos i j else neg i j in
          add_r (node (p ^ "''")) target
        | `Lemma53_mirror ->
          (* mirror of Lemma 53: p'' receives edges; spikes run reversed.
             Handled by building Lemma 53 facts and mirroring below, so
             here we emit the same tuples as Lemma 53. *)
          add_r (node (p ^ "''")) (node (p ^ "'"));
          let target = if lit > 0 then pos i j else neg i j in
          add_r (node (p ^ "''")) target
        | `Lemma54 ->
          (* spike chain p' -> *p -> p'' plus a connector from the variable
             cycle into p''; the connector witness (A(v) T conn C(p'') for a
             positive literal) dies iff the literal holds *)
          add_r (node (p ^ "'")) (node ("s" ^ p));
          add_r (node ("s" ^ p)) (node (p ^ "''"));
          let start = if lit > 0 then neg i j else pos i j in
          add_r start (node (p ^ "''"))
      in
      position l1 "ka";
      position l2 "kb";
      position l3 "kc")
    (clauses3 f);
  let facts =
    match shape with
    | `Lemma53_mirror ->
      (* global mirror: reverse every R-tuple (the A-variant gadget for the
         reversed chain is exactly the C-variant gadget for the chain) *)
      List.map
        (fun (fact : Database.fact) ->
          match fact.tuple with
          | [ a; b ] -> Database.fact fact.rel [ b; a ]
          | _ -> fact)
        !facts
    | _ -> !facts
  in
  let db = Database.of_facts facts in
  let populate rel db =
    List.fold_left (fun db value -> Database.add_row db rel [ value ]) db (Database.active_domain db)
  in
  let db = if with_a then populate "A" db else db in
  let db = if with_b then populate "B" db else db in
  let db = if with_c then populate "C" db else db in
  let atoms =
    (if with_a then "A(x), " else "")
    ^ "R(x,y), "
    ^ (if with_b then "B(y), " else "")
    ^ "R(y,z)"
    ^ if with_c then ", C(z)" else ""
  in
  {
    db;
    query = q atoms;
    k = (n + 5) * m;
    description = Printf.sprintf "3SAT -> RES(%s) (Prop 10 / Lemmas 52-54)" atoms;
  }

(* ------------------------------------------------------------------ *)
(* Proposition 56 (Figure 16): 3SAT -> RES(triangle).                  *)

(* Each variable gadget is a cyclic sequence of 12m values with roles
   a,b,c,a,b,c,...; solid edges follow the cycle (R on a->b, S on b->c,
   T on c->a) and each adjacent solid pair is closed into an RGB triangle
   by one dotted edge (v_{k+2} -> v_k, in the remaining relation).  Solid
   edges alternate marks v_i / vbar_i; deleting all even-indexed (v_i)
   solid edges corresponds to x_i := true.  12m triangles per gadget, 6m
   deletions each.  Clause j uses the edge window [12j .. 12j+5] (the odd
   segment; the next window is an unused buffer) and identifies endpoint
   values across three gadgets to create one extra RGB triangle that is
   already covered iff some literal is true.  kψ = 6mn. *)
let sat3_to_triangle (f : Cnf.t) =
  let m = List.length f.clauses in
  let n = f.n_vars in
  if m = 0 then invalid_arg "sat3_to_triangle: empty formula";
  (* Occurrence counts: each occurrence of a variable in a clause position
     gets its own 12-edge window of that variable's gadget (6 usable edges
     + 6 buffer edges, keeping identified vertices at distance >= 7 so no
     spurious RGB triangles arise).  Gadget i is a cycle of 12*s_i solid
     edges, so its mandatory cost is 6*s_i and kψ = Σ 6*s_i = 18m. *)
  let occurrences = Array.make (n + 1) 0 in
  let padded = clauses3 f in
  List.iter
    (fun (l1, l2, l3) ->
      List.iter (fun l -> occurrences.(Cnf.var l) <- occurrences.(Cnf.var l) + 1) [ l1; l2; l3 ])
    padded;
  let len = Array.map (fun s -> 12 * max s 1) occurrences in
  let node_id i p = ((i - 1) * 12 * 3 * m * 2) + p in
  let uf = Res_graph.Union_find.create (n * 12 * 3 * m * 2) in
  let role p = match p mod 3 with 0 -> `A | 1 -> `B | _ -> `C in
  (* Clause identifications.  Within a window starting at w, the edges by
     (relation, parity) sit at offsets: R even -> w, R odd -> w+3,
     S even -> w+4, S odd -> w+1, T even -> w+2, T odd -> w+5.  Positive
     literals use the even (v_i-marked) edge: deleting the even edges is
     x_i := true.  Solid edge at position p runs p -> p+1. *)
  let next_window = Array.make (n + 1) 0 in
  let window i =
    let w = 12 * next_window.(i) in
    next_window.(i) <- next_window.(i) + 1;
    w
  in
  List.iter
    (fun (l1, l2, l3) ->
      let v1 = Cnf.var l1 and v2 = Cnf.var l2 and v3 = Cnf.var l3 in
      let w1 = window v1 and w2 = window v2 and w3 = window v3 in
      let r_edge = if l1 > 0 then w1 else w1 + 3 in
      let s_edge = if l2 > 0 then w2 + 4 else w2 + 1 in
      let t_edge = if l3 > 0 then w3 + 2 else w3 + 5 in
      let ( %% ) p i = p mod len.(i) in
      (* identify: b of the R-edge with b of the S-edge; c of the S-edge
         with c of the T-edge; a of the T-edge with a of the R-edge *)
      Res_graph.Union_find.union uf (node_id v1 ((r_edge + 1) %% v1)) (node_id v2 (s_edge %% v2));
      Res_graph.Union_find.union uf (node_id v2 ((s_edge + 1) %% v2)) (node_id v3 (t_edge %% v3));
      Res_graph.Union_find.union uf (node_id v3 ((t_edge + 1) %% v3)) (node_id v1 (r_edge %% v1)))
    padded;
  let value i p = v "g%d" (Res_graph.Union_find.find uf (node_id i p)) in
  let facts = ref [] in
  let add rel a b = facts := Database.fact rel [ a; b ] :: !facts in
  let rel_of_role = function `A -> "R" | `B -> "S" | `C -> "T" in
  for i = 1 to n do
    for p = 0 to len.(i) - 1 do
      let p1 = (p + 1) mod len.(i) and p2 = (p + 2) mod len.(i) in
      (* solid edge p -> p+1 *)
      add (rel_of_role (role p)) (value i p) (value i p1);
      (* dotted closure for the triangle on (p, p+1, p+2): edge p+2 -> p,
         whose relation matches role(p+2) -> role(p) *)
      add (rel_of_role (role p2)) (value i p2) (value i p)
    done
  done;
  {
    db = Database.of_facts !facts;
    query = q "R(x,y), S(y,z), T(z,x)";
    k = 18 * m;
    description = "3SAT -> RES(triangle) (Prop 56, Fig 16)";
  }

(* ------------------------------------------------------------------ *)
(* Proposition 57: triangle -> tripod.                                 *)

let triangle_instance_to_tripod db =
  let mk rel = List.filter_map (fun t -> match t with [ a; b ] -> Some (a, b) | _ -> None) (Database.tuples_of db rel) in
  let r = mk "R" and s = mk "S" and t = mk "T" in
  let a_facts = List.map (fun (a, b) -> Database.fact "A" [ Value.pair a b ]) r in
  let b_facts = List.map (fun (b, c) -> Database.fact "B" [ Value.pair b c ]) s in
  let c_facts = List.map (fun (c, a) -> Database.fact "C" [ Value.pair c a ]) t in
  (* W restricted to witness-forming triples: other W-tuples never join. *)
  let w_facts =
    List.concat_map
      (fun (a, b) ->
        List.concat_map
          (fun (b', c) ->
            if Value.equal b b' then
              List.filter_map
                (fun (c', a') ->
                  if Value.equal c c' && Value.equal a a' then
                    Some
                      (Database.fact "W"
                         [ Value.pair a b; Value.pair b c; Value.pair c a ])
                  else None)
                t
            else [])
          s)
      r
  in
  Database.of_facts (a_facts @ b_facts @ c_facts @ w_facts)

let triangle_to_tripod db =
  let k =
    match Exact.value db (q "R(x,y), S(y,z), T(z,x)") with
    | Some k -> k
    | None -> invalid_arg "triangle_to_tripod: unbreakable triangle instance"
  in
  {
    db = triangle_instance_to_tripod db;
    query = q "A(x), B(y), C(z), W(x,y,z)";
    k;
    description = "RES(triangle) -> RES(tripod) (Prop 57)";
  }

let sat3_to_tripod f =
  let tri = sat3_to_triangle f in
  {
    db = triangle_instance_to_tripod tri.db;
    query = q "A(x), B(y), C(z), W(x,y,z)";
    k = tri.k;
    description = "3SAT -> RES(tripod) (Prop 57)";
  }

(* ------------------------------------------------------------------ *)
(* Lemma 6 / Theorem 24: triangle -> any query with an sj-free triad.   *)

let triangle_to_triad db (query : Res_cq.Query.t) =
  let qn = Domination.normalize (Res_cq.Homomorphism.minimize query) in
  let s0, s1, s2 =
    match Triad.find qn with
    | Some t -> t
    | None -> invalid_arg "triangle_to_triad: query has no triad"
  in
  let rels = [ s0.rel; s1.rel; s2.rel ] in
  if List.length (List.sort_uniq compare rels) <> 3 then
    invalid_arg "triangle_to_triad: triad relations are not pairwise distinct (use the sj lifting instead)";
  let in0 var = List.mem var (Res_cq.Atom.vars s0) in
  let in1 var = List.mem var (Res_cq.Atom.vars s1) in
  let in2 var = List.mem var (Res_cq.Atom.vars s2) in
  let assign a b c var =
    match (in0 var, in1 var, in2 var) with
    | true, true, true -> Value.s "const"
    | true, true, false -> b
    | false, true, true -> c
    | true, false, true -> a
    | true, false, false -> Value.tag "ab" (Value.pair a b)
    | false, true, false -> Value.tag "bc" (Value.pair b c)
    | false, false, true -> Value.tag "ca" (Value.pair c a)
    | false, false, false -> Value.tag "abc" (Value.triple a b c)
  in
  let witnesses = Eval.witnesses db (q "R(x,y), S(y,z), T(z,x)") in
  let db' =
    List.fold_left
      (fun acc (w : Eval.witness) ->
        let a = List.assoc "x" w.valuation
        and b = List.assoc "y" w.valuation
        and c = List.assoc "z" w.valuation in
        List.fold_left
          (fun acc (atom : Res_cq.Atom.t) ->
            Database.add_row acc atom.rel (List.map (assign a b c) atom.args))
          acc (Res_cq.Query.atoms qn))
      Database.empty witnesses
  in
  let k =
    match Exact.value db (q "R(x,y), S(y,z), T(z,x)") with
    | Some k -> k
    | None -> invalid_arg "triangle_to_triad: unbreakable triangle instance"
  in
  { db = db'; query = qn; k; description = "RES(triangle) -> RES(q) via triad (Lemma 6/Thm 24)" }

(* ------------------------------------------------------------------ *)
(* Lemma 21: lifting an sj-free instance to a self-join variation.      *)

let sjfree_to_sj_variation db ~base ~target =
  let base_atoms = Res_cq.Query.atoms base and target_atoms = Res_cq.Query.atoms target in
  if List.map (fun (a : Res_cq.Atom.t) -> a.args) base_atoms
     <> List.map (fun (a : Res_cq.Atom.t) -> a.args) target_atoms
  then invalid_arg "sjfree_to_sj_variation: atom variable lists must align";
  let witnesses = Eval.witnesses db base in
  let db' =
    List.fold_left
      (fun acc (w : Eval.witness) ->
        List.fold_left
          (fun acc (atom : Res_cq.Atom.t) ->
            let tuple =
              List.map (fun var -> Value.tag var (List.assoc var w.valuation)) atom.args
            in
            Database.add_row acc atom.rel tuple)
          acc target_atoms)
      Database.empty witnesses
  in
  let k =
    match Exact.value db base with
    | Some k -> k
    | None -> invalid_arg "sjfree_to_sj_variation: unbreakable base instance"
  in
  {
    db = db';
    query = target;
    k;
    description = "RES(sj-free q) -> RES(sj variation) (Lemma 21)";
  }

(* ------------------------------------------------------------------ *)
(* Proposition 34 (Figure 14): 3SAT -> RES(qABperm).                    *)

(* Variable gadget: 2-way pairs {v^j, vbar^j} and {vbar^j, v^{j+1}} plus
   helper pairs {*^j, v^j} and {*bar^j, vbar^j}; A- and B-tuples on every
   node.  Truth assignment = choose A,B on the positive (resp. negative)
   nodes plus the helper R-tuples on the other side: 3m tuples either way.
   Clause gadget: 2-way triangle with primed pendants; 5 tuples when the
   clause is satisfied, 6 otherwise.  kψ = (3n+5)m. *)
let sat3_to_abperm (f : Cnf.t) =
  let m = List.length f.clauses in
  let n = f.n_vars in
  if m = 0 then invalid_arg "sat3_to_abperm: empty formula";
  let facts = ref [] in
  let add_r a b = facts := Database.fact "R" [ a; b ] :: !facts in
  let add_pair a b =
    add_r a b;
    add_r b a
  in
  let add_ab x =
    facts := Database.fact "A" [ x ] :: Database.fact "B" [ x ] :: !facts
  in
  let pos i j = v "v%d_%d" i j and neg i j = v "vbar%d_%d" i j in
  let hpos i j = v "h%d_%d" i j and hneg i j = v "hbar%d_%d" i j in
  for i = 1 to n do
    for j = 1 to m do
      List.iter add_ab [ pos i j; neg i j; hpos i j; hneg i j ];
      add_pair (pos i j) (neg i j);
      add_pair (neg i j) (pos i (if j = m then 1 else j + 1));
      add_pair (hpos i j) (pos i j);
      add_pair (hneg i j) (neg i j)
    done
  done;
  List.iteri
    (fun j0 (l1, l2, l3) ->
      let j = j0 + 1 in
      let node p = v "%s_%d" p j in
      List.iter add_ab [ node "ka"; node "kb"; node "kc"; node "ka'"; node "kb'"; node "kc'" ];
      add_pair (node "ka") (node "kb");
      add_pair (node "kb") (node "kc");
      add_pair (node "kc") (node "ka");
      add_pair (node "ka") (node "ka'");
      add_pair (node "kb") (node "kb'");
      add_pair (node "kc") (node "kc'");
      let connect lit p =
        let i = Cnf.var lit in
        let vnode = if lit > 0 then pos i j else neg i j in
        add_pair vnode (node p)
      in
      connect l1 "ka";
      connect l2 "kb";
      connect l3 "kc")
    (clauses3 f);
  {
    db = Database.of_facts !facts;
    query = q "A(x), R(x,y), R(y,x), B(y)";
    k = ((3 * n) + 5) * m;
    description = "3SAT -> RES(qABperm) (Prop 34, Fig 14)";
  }

(* ------------------------------------------------------------------ *)
(* Proposition 45: 3SAT -> RES(qSxy3perm-R).                            *)

(* P(a,b) = {R(a,b), R(b,a)}; F(a,b) = P(a,b) + {S(a,b), S(b,a)}.
   Variable gadget: F(x_i, xbar_i) for i in [m] (forcing one of the two
   R-orientations) chained by P(x_i, x_{i+1}) and P(xbar_i, xbar_{i+1}).
   Clause gadget: F-triangle (a,b,c) + F-links to the literal nodes +
   P-pendants (a,a'), (b,b'), (c,c').  kψ = 2nm + 8m. *)
let sat3_to_sxy3perm (f : Cnf.t) =
  let m = List.length f.clauses in
  let n = f.n_vars in
  if m = 0 then invalid_arg "sat3_to_sxy3perm: empty formula";
  let facts = ref [] in
  let add_p a b =
    facts := Database.fact "R" [ a; b ] :: Database.fact "R" [ b; a ] :: !facts
  in
  let add_f a b =
    add_p a b;
    facts := Database.fact "S" [ a; b ] :: Database.fact "S" [ b; a ] :: !facts
  in
  let pos i j = v "x%d_%d" i j and neg i j = v "xbar%d_%d" i j in
  for i = 1 to n do
    for j = 1 to m do
      add_f (pos i j) (neg i j);
      if j < m then begin
        add_p (pos i j) (pos i (j + 1));
        add_p (neg i j) (neg i (j + 1))
      end
    done
  done;
  List.iteri
    (fun j0 (l1, l2, l3) ->
      let j = j0 + 1 in
      let node p = v "%s_%d" p j in
      add_f (node "a") (node "b");
      add_f (node "b") (node "c");
      add_f (node "c") (node "a");
      add_p (node "a") (node "a'");
      add_p (node "b") (node "b'");
      add_p (node "c") (node "c'");
      let connect lit p =
        let i = Cnf.var lit in
        let vnode = if lit > 0 then pos i j else neg i j in
        add_f (node p) vnode
      in
      connect l1 "a";
      connect l2 "b";
      connect l3 "c")
    (clauses3 f);
  {
    db = Database.of_facts !facts;
    query = q "S^x(x,y), R(x,y), R(y,z), R(z,y)";
    k = (n * ((2 * m) - 1)) + (8 * m);
    description = "3SAT -> RES(qSxy3perm-R) (Prop 45)";
  }

(* Note: a naive instance map RES(qchain) -> RES(expansion) that simply
   populates the unary relations does NOT preserve resilience on arbitrary
   instances — a unary tuple A(a) covers the witnesses of every R-tuple
   leaving a, which is cheaper whenever out-degree(a) >= 2.  That is why
   Lemmas 52-54 build dedicated gadgets per expansion (see sat3_to_chain);
   we record the phenomenon in EXPERIMENTS.md. *)

(* ------------------------------------------------------------------ *)
(* Proposition 46: qABperm -> qAC3perm-R.                               *)

let abperm_to_ac3perm db =
  let primed a = Value.tag "prime" a in
  let a_tuples = Database.tuples_of db "A" in
  let db' =
    List.fold_left
      (fun acc t ->
        match t with
        | [ a ] ->
          let acc = Database.add_row acc "A" [ primed a ] in
          Database.add_row acc "R" [ primed a; a ]
        | _ -> acc)
      Database.empty a_tuples
  in
  let db' =
    List.fold_left (fun acc t -> Database.add_row acc "R" t) db' (Database.tuples_of db "R")
  in
  let db' =
    List.fold_left (fun acc t -> Database.add_row acc "C" t) db' (Database.tuples_of db "B")
  in
  let k =
    match Exact.value db (q "A(x), R(x,y), R(y,x), B(y)") with
    | Some k -> k
    | None -> invalid_arg "abperm_to_ac3perm: unbreakable qABperm instance"
  in
  {
    db = db';
    query = q "A(x), R(x,y), R(y,z), R(z,y), C(z)";
    k;
    description = "RES(qABperm) -> RES(qAC3perm-R) (Prop 46)";
  }

(* Proposition 39's Max-2SAT crossover gadget (Figure 15) is not
   reproduced; see the note in the interface and EXPERIMENTS.md. *)
