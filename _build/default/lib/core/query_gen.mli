(** Systematic enumeration of queries in the paper's fragment.

    Theorem 37 claims a {e complete} dichotomy for ssj binary CQs with at
    most two atoms of the repeated relation, decided by a PTIME procedure.
    This module enumerates that fragment (up to isomorphism, with bounded
    decorations) so tests and benches can check totality: the classifier
    must return PTIME or NP-complete — never Unknown or Open — on every
    generated query. *)

open Res_cq

val two_r_atom_shapes : unit -> Query.t list
(** All queries consisting of exactly two distinct binary R-atoms over at
    most four variables, up to isomorphism (chains, confluences,
    permutations, REP variants, disjoint paths, …). *)

val decorated_two_r_atom_queries :
  ?with_unary:bool -> ?with_exo_binary:bool -> unit -> Query.t list
(** The shapes of {!two_r_atom_shapes}, optionally decorated with
    endogenous unary atoms on every subset of variables ([with_unary],
    default true) and with at most one exogenous binary helper atom
    ([with_exo_binary], default true).  Only connected queries whose
    R-relation is genuinely repeated are kept.  Several thousand queries. *)

val count : unit -> int
(** Number of decorated queries generated (for reporting). *)

val three_r_atom_shapes : unit -> Query.t list
(** All queries of exactly three distinct binary R-atoms over at most six
    variables, up to isomorphism (Section 8's raw material: 3-chains,
    3-confluences, chain-confluences, permutation-plus-R, REP variants,
    and path shapes). *)

val decorated_three_r_atom_queries : ?with_unary:bool -> unit -> Query.t list
(** Three-R-atom shapes decorated with endogenous unary atoms on variable
    subsets; connected queries with the self-join intact. *)
