open Res_cq

let vars = [ "x"; "y"; "z"; "w" ]

let all_pairs = List.concat_map (fun a -> List.map (fun b -> (a, b)) vars) vars

let two_r_atom_shapes () =
  let shapes = ref [] in
  List.iter
    (fun (a1, b1) ->
      List.iter
        (fun (a2, b2) ->
          if (a1, b1) <> (a2, b2) then begin
            let q =
              Query.make [ Atom.make "R" [ a1; b1 ]; Atom.make "R" [ a2; b2 ] ]
            in
            if
              List.length (Query.atoms q) = 2
              && not (List.exists (fun q' -> Query_iso.isomorphic q q') !shapes)
            then shapes := q :: !shapes
          end)
        all_pairs)
    all_pairs;
  List.rev !shapes

let subsets xs =
  List.fold_left (fun acc x -> acc @ List.map (fun s -> x :: s) acc) [ [] ] xs

let decorated_two_r_atom_queries ?(with_unary = true) ?(with_exo_binary = true) () =
  let shapes = two_r_atom_shapes () in
  let decorate (shape : Query.t) =
    let shape_vars = Query.vars shape in
    let unary_choices = if with_unary then subsets shape_vars else [ [] ] in
    let exo_choices =
      if with_exo_binary then
        None
        :: List.filter_map
             (fun (a, b) ->
               if List.mem a shape_vars && List.mem b shape_vars then Some (Some (a, b))
               else None)
             all_pairs
      else [ None ]
    in
    List.concat_map
      (fun unary_vars ->
        List.filter_map
          (fun exo ->
            let unary_atoms =
              List.mapi (fun i v -> Atom.make (Printf.sprintf "U%d" i) [ v ]) unary_vars
            in
            let exo_atoms, exo_rels =
              match exo with
              | None -> ([], [])
              | Some (a, b) -> ([ Atom.make "H" [ a; b ] ], [ "H" ])
            in
            let q = Query.make ~exo:exo_rels (Query.atoms shape @ unary_atoms @ exo_atoms) in
            (* keep only connected queries whose self-join survived *)
            if Components.is_connected q && Query.repeated_relations q = [ "R" ] then Some q
            else None)
          exo_choices)
      unary_choices
  in
  List.concat_map decorate shapes

let count () = List.length (decorated_two_r_atom_queries ())

let vars6 = [ "x"; "y"; "z"; "w"; "u"; "v" ]

let three_r_atom_shapes () =
  (* Enumerate triples of binary R-atoms over canonical variables: the
     first atom is fixed to R(x,y) (or R(x,x)) up to renaming, later atoms
     draw from already-used variables plus at most two fresh ones each. *)
  let shapes = ref [] in
  let pairs_over vs = List.concat_map (fun a -> List.map (fun b -> (a, b)) vs) vs in
  let used_prefix k = List.filteri (fun i _ -> i < k) vars6 in
  let add q =
    if
      List.length (Query.atoms q) = 3
      && not (List.exists (fun q' -> Query_iso.isomorphic q q') !shapes)
    then shapes := q :: !shapes
  in
  List.iter
    (fun (a1, b1) ->
      List.iter
        (fun (a2, b2) ->
          List.iter
            (fun (a3, b3) ->
              match
                Query.make
                  [ Atom.make "R" [ a1; b1 ]; Atom.make "R" [ a2; b2 ]; Atom.make "R" [ a3; b3 ] ]
              with
              | q -> add q
              | exception Invalid_argument _ -> ())
            (pairs_over (used_prefix 6)))
        (pairs_over (used_prefix 4)))
    [ ("x", "y"); ("x", "x") ];
  List.rev !shapes

let decorated_three_r_atom_queries ?(with_unary = true) () =
  let shapes = three_r_atom_shapes () in
  List.concat_map
    (fun (shape : Query.t) ->
      let shape_vars = Query.vars shape in
      let unary_choices = if with_unary then subsets shape_vars else [ [] ] in
      List.filter_map
        (fun unary_vars ->
          let unary_atoms =
            List.mapi (fun i v -> Atom.make (Printf.sprintf "U%d" i) [ v ]) unary_vars
          in
          let q = Query.make (Query.atoms shape @ unary_atoms) in
          if Components.is_connected q && Query.repeated_relations q = [ "R" ] then Some q
          else None)
        unary_choices)
    shapes
