(** Result type shared by all resilience solvers. *)

open Res_db

type t =
  | Finite of int * Database.fact list
      (** ρ(D,q) and a minimum contingency set achieving it *)
  | Unbreakable
      (** some witness consists solely of exogenous tuples; no contingency
          set exists *)

val value : t -> int option
val value_exn : t -> int
val facts : t -> Database.fact list
val equal_value : t -> t -> bool
val pp : Format.formatter -> t -> unit
