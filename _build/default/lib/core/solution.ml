open Res_db

type t =
  | Finite of int * Database.fact list
  | Unbreakable

let value = function Finite (v, _) -> Some v | Unbreakable -> None

let value_exn = function
  | Finite (v, _) -> v
  | Unbreakable -> failwith "Solution.value_exn: unbreakable instance"

let facts = function Finite (_, fs) -> fs | Unbreakable -> []

let equal_value a b =
  match (a, b) with
  | Finite (x, _), Finite (y, _) -> x = y
  | Unbreakable, Unbreakable -> true
  | _ -> false

let pp ppf = function
  | Unbreakable -> Format.pp_print_string ppf "unbreakable"
  | Finite (v, fs) ->
    Format.fprintf ppf "%d via {%a}" v
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Database.pp_fact)
      fs
