lib/core/ijp.mli: Database Res_cq Res_db Res_graph Seq
