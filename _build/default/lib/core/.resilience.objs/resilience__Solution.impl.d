lib/core/solution.ml: Database Format Res_db
