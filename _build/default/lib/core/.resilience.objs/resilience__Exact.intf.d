lib/core/exact.mli: Database Res_cq Res_db Solution
