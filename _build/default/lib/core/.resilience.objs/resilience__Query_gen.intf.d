lib/core/query_gen.mli: Query Res_cq
