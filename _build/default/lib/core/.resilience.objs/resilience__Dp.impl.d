lib/core/dp.ml: Database Eval List Printf Res_cq Res_db Solver
