lib/core/triad.ml: Array Atom Fun Hypergraph List Query Res_cq
