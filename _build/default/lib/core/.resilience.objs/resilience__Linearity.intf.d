lib/core/linearity.mli: Atom Query Res_cq
