lib/core/classify.mli: Atom Format Query Res_cq Zoo
