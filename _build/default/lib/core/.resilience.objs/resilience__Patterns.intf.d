lib/core/patterns.mli: Atom Query Res_cq
