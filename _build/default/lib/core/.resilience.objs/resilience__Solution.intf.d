lib/core/solution.mli: Database Format Res_db
