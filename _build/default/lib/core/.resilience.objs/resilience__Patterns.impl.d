lib/core/patterns.ml: Array Atom Hypergraph List Query Res_cq Res_graph
