lib/core/query_gen.ml: Atom Components List Printf Query Query_iso Res_cq
