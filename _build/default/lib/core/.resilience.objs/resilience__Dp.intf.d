lib/core/dp.mli: Database Res_cq Res_db Solution Value
