lib/core/special.ml: Array Database Eval Flow Hashtbl List Map Patterns Queue Res_cq Res_db Res_graph Set Solution Stdlib Value
