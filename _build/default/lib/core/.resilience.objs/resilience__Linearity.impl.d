lib/core/linearity.ml: Array Atom Hashtbl Hypergraph List Option Query Res_cq Set String
