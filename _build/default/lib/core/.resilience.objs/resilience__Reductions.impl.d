lib/core/reductions.ml: Array Database Domination Eval Exact List Patterns Printf Res_cq Res_db Res_graph Res_sat Triad Value
