lib/core/domination.mli: Query Res_cq
