lib/core/zoo.ml: List Parser Query Res_cq
