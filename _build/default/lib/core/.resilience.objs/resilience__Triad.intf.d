lib/core/triad.mli: Atom Query Res_cq
