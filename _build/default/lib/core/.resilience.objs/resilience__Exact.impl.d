lib/core/exact.ml: Array Database Eval Hashtbl Int List Option Res_cq Res_db Set Solution
