lib/core/responsibility.mli: Database Res_cq Res_db
