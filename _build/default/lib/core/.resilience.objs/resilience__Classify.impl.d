lib/core/classify.ml: Atom Components Domination Format Hashtbl Homomorphism List Patterns Printf Query Query_iso Res_cq Triad Zoo
