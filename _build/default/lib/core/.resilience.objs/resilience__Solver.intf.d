lib/core/solver.mli: Database Res_cq Res_db Solution
