lib/core/responsibility.ml: Database Eval Hashtbl Int List Res_cq Res_db Set
