lib/core/solver.ml: Classify Database Eval Exact Flow List Printf Query_iso Res_cq Res_db Solution Special String Value
