lib/core/zoo.mli: Query Res_cq
