lib/core/flow.mli: Database Res_cq Res_db Solution
