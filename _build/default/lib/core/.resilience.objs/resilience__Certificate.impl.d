lib/core/certificate.ml: Database Exact Ijp List Printf Reductions Res_cq Res_db Res_graph
