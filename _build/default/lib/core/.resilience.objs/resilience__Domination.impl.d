lib/core/domination.ml: Array Atom Fun List Query Res_cq
