lib/core/reductions.mli: Database Res_cq Res_db Res_graph Res_sat
