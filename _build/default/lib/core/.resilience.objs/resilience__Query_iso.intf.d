lib/core/query_iso.mli: Query Res_cq
