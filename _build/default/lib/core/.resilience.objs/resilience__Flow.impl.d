lib/core/flow.ml: Array Database Eval Hashtbl Linearity List Res_cq Res_db Res_graph Set Solution String Value
