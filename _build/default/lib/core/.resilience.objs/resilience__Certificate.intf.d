lib/core/certificate.mli: Database Reductions Res_cq Res_db Res_graph
