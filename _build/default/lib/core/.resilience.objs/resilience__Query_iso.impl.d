lib/core/query_iso.ml: Atom List Map Parser Query Res_cq String
