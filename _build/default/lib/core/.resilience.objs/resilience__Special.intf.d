lib/core/special.mli: Database Res_cq Res_db Solution
