lib/core/ijp.ml: Array Database Eval Exact Format Hashtbl List Printf Res_cq Res_db Res_graph Seq Set String Value
