(** Catalog of every named query in the paper, with the paper's verdict.

    Used by tests (the classifier must reproduce each verdict), by the
    Figure 5 / Theorem 37 benchmark tables, and by the examples. *)

open Res_cq

type expected =
  | P  (** paper proves PTIME *)
  | NPC  (** paper proves NP-complete *)
  | Open  (** paper states the complexity is open *)

type entry = {
  name : string;
  query : Query.t;
  expected : expected;
  reference : string;  (** where in the paper *)
}

val all : entry list
val find : string -> entry
(** @raise Not_found for unknown names. *)

val chain_expansions : entry list
(** The 8 unary expansions of qchain (Section 7.1, Figure 6a) —
    qchain itself plus a/b/c/ab/ac/bc/abc. *)

val figure5 : entry list
(** The queries behind the Figure 5 pattern table (two R-atoms). *)

val expected_to_string : expected -> string
