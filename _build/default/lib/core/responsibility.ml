open Res_db
module FS = Database.Fact_set

(* A contingency Γ for fact t must (a) avoid t, (b) hit every witness that
   does not contain t (so that deleting t afterwards falsifies q), and
   (c) leave at least one witness containing t alive.  We minimize over
   the choice of the surviving witness w: hit all t-free witnesses using
   facts outside w ∪ {t}. *)

let min_contingency db q (t : Database.fact) =
  if Res_cq.Query.is_exogenous q t.rel then None
  else begin
    let witness_sets = Eval.witness_fact_sets db q in
    let with_t, without_t = List.partition (fun fs -> FS.mem t fs) witness_sets in
    if with_t = [] then None
    else begin
      let endo fs =
        FS.filter (fun f -> not (Res_cq.Query.is_exogenous q f.Database.rel)) fs
      in
      let best = ref None in
      List.iter
        (fun survivor ->
          (* facts we may delete: endogenous, not t, not in the survivor *)
          let allowed f = (not (FS.mem f survivor)) && f <> t in
          let feasible = ref true in
          let sets =
            List.map
              (fun fs ->
                let s = FS.filter allowed (endo fs) in
                if FS.is_empty s then feasible := false;
                s)
              without_t
          in
          if !feasible then begin
            (* solve restricted hitting set exactly via the Exact machinery:
               rebuild a pseudo-database?  Simpler: brute branch and bound
               on the fact sets directly. *)
            let size =
              if sets = [] then 0
              else begin
                (* reuse Exact's engine through a private encoding *)
                let ids = Hashtbl.create 32 in
                let next = ref 0 in
                let module IS = Set.Make (Int) in
                let int_sets =
                  List.map
                    (fun s ->
                      FS.fold
                        (fun f acc ->
                          let i =
                            match Hashtbl.find_opt ids f with
                            | Some i -> i
                            | None ->
                              let i = !next in
                              incr next;
                              Hashtbl.replace ids f i;
                              i
                          in
                          IS.add i acc)
                        s IS.empty)
                    sets
                in
                let best_local = ref max_int in
                let rec branch depth remaining =
                  match remaining with
                  | [] -> if depth < !best_local then best_local := depth
                  | _ ->
                    if depth + 1 >= !best_local then ()
                    else begin
                      let pivot = List.hd remaining in
                      IS.iter
                        (fun f ->
                          branch (depth + 1)
                            (List.filter (fun s -> not (IS.mem f s)) remaining))
                        pivot
                    end
                in
                branch 0 int_sets;
                !best_local
              end
            in
            match !best with
            | Some b when b <= size -> ()
            | _ -> best := Some size
          end)
        with_t;
      !best
    end
  end

let responsibility db q t =
  match min_contingency db q t with
  | Some k -> 1.0 /. float_of_int (1 + k)
  | None -> 0.0

let ranking db q =
  Database.endogenous_facts db q
  |> List.filter_map (fun f ->
         let r = responsibility db q f in
         if r > 0.0 then Some (f, r) else None)
  |> List.sort (fun (_, a) (_, b) -> compare b a)
