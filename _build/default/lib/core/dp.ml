open Res_db

let anchor_rel i = Printf.sprintf "Bind%d" i

let bind (q : Res_cq.Query.t) head db =
  let qvars = Res_cq.Query.vars q in
  List.iter
    (fun (v, _) ->
      if not (List.mem v qvars) then
        invalid_arg (Printf.sprintf "Dp.bind: head variable %s not in query" v))
    head;
  let atoms, exo, db' =
    List.fold_left
      (fun (atoms, exo, db) (i, (v, c)) ->
        let rel = anchor_rel i in
        (atoms @ [ Res_cq.Atom.make rel [ v ] ], rel :: exo, Database.add_row db rel [ c ]))
      (Res_cq.Query.atoms q, List.filter (Res_cq.Query.is_exogenous q) (Res_cq.Query.relations q), db)
      (List.mapi (fun i b -> (i, b)) head)
  in
  (Res_cq.Query.make ~exo atoms, db')

let output_tuples db q ~head =
  List.map
    (fun (w : Eval.witness) -> List.map (fun v -> List.assoc v w.valuation) head)
    (Eval.witnesses db q)
  |> List.sort_uniq compare

let side_effect db q ~head =
  let q', db' = bind q head db in
  Solver.solve db' q'

let side_effects_all db q ~head =
  List.map
    (fun tuple -> (tuple, side_effect db q ~head:(List.combine head tuple)))
    (output_tuples db q ~head)
