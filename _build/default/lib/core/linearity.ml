open Res_cq

(* Incremental search for a contiguous-variables order: place atoms one at
   a time; a variable is "open" while its block may continue and "closed"
   once an atom without it is placed after one with it.  Placing an atom
   that re-uses a closed variable is pruned. *)
let linear_order q =
  let atoms = Array.of_list (Query.atoms q) in
  let n = Array.length atoms in
  let used = Array.make n false in
  let result = ref None in
  let module SS = Set.Make (String) in
  let rec go placed open_vars closed_vars =
    if !result <> None then ()
    else if List.length placed = n then result := Some (List.rev placed)
    else begin
      for i = 0 to n - 1 do
        if !result = None && not used.(i) then begin
          let vs = SS.of_list (Atom.vars atoms.(i)) in
          if SS.is_empty (SS.inter vs closed_vars) then begin
            used.(i) <- true;
            let closed' = SS.union closed_vars (SS.diff open_vars vs) in
            go (atoms.(i) :: placed) vs closed';
            used.(i) <- false
          end
        end
      done
    end
  in
  go [] SS.empty SS.empty;
  !result

let is_linear q = linear_order q <> None

let endogenous_groups q =
  let module SS = Set.Make (String) in
  let endo = Query.endogenous_atoms q in
  let groups = Hashtbl.create 8 in
  let keys = ref [] in
  List.iter
    (fun a ->
      let key = SS.elements (SS.of_list (Atom.vars a)) in
      if not (Hashtbl.mem groups key) then keys := key :: !keys;
      let cur = try Hashtbl.find groups key with Not_found -> [] in
      Hashtbl.replace groups key (a :: cur))
    endo;
  List.rev_map (fun k -> List.rev (Hashtbl.find groups k)) !keys

(* An order of endogenous groups is valid iff each inner group separates
   every group on its left from every group on its right: removing its
   variables disconnects them in H(q). *)
let pseudo_linear_order q =
  let h = Hypergraph.of_query q in
  let n_atoms = Hypergraph.n_atoms h in
  let atom_index a =
    let rec find i = if Atom.equal (Hypergraph.atom h i) a then i else find (i + 1) in
    find 0
  in
  ignore n_atoms;
  let groups = Array.of_list (endogenous_groups q) in
  let g = Array.length groups in
  let idx_of_group gi = List.map atom_index groups.(gi) in
  let separates k i j =
    (* Does group k separate (representatives of) groups i and j? *)
    let by = idx_of_group k in
    List.for_all
      (fun ai -> List.for_all (fun aj -> Hypergraph.separates h ~by ai aj) (idx_of_group j))
      (idx_of_group i)
  in
  if g <= 2 then Some (Array.to_list groups)
  else begin
    let used = Array.make g false in
    let result = ref None in
    let rec go placed =
      if !result <> None then ()
      else if List.length placed = g then result := Some (List.rev placed)
      else begin
        for c = 0 to g - 1 do
          if !result = None && not used.(c) then begin
            (* Check: every already-placed group k strictly between two
               placed groups must separate them; incremental check — c
               becomes rightmost, so each inner placed group k must
               separate everything to its left from c. *)
            let rec ok_suffix = function
              | [] | [ _ ] -> true
              | k :: lefts -> List.for_all (fun l -> separates k l c) lefts && ok_suffix lefts
            in
            if ok_suffix placed then begin
              used.(c) <- true;
              go (c :: placed);
              used.(c) <- false
            end
          end
        done
      end
    in
    go [];
    Option.map (List.map (fun i -> groups.(i))) !result
  end

let is_pseudo_linear q = pseudo_linear_order q <> None
