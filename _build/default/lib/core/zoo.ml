open Res_cq

type expected = P | NPC | Open

type entry = {
  name : string;
  query : Query.t;
  expected : expected;
  reference : string;
}

let e name s expected reference = { name; query = Parser.query s; expected; reference }

let sec2 =
  [
    e "q_triangle" "R(x,y), S(y,z), T(z,x)" NPC "Ex.2/Prop.56: triad {R,S,T}";
    e "q_tripod" "A(x), B(y), C(z), W(x,y,z)" NPC "Ex.2/Prop.57: triad {A,B,C}, W dominated";
    e "q_rats" "R(x,y), A(x), T(z,x), S(y,z)" P "Ex.2: A dominates R,T; no triad";
    e "q_brats" "B(y), R(x,y), A(x), T(z,x), S(y,z)" P "Sec.5.1: domination disarms the triad";
    e "q_lin" "A(x), R(x,y,z), S(y,z)" P "Ex.2: linear";
  ]

let sec3 =
  [
    e "q_vc" "R(x), S(x,y), R(y)" NPC "Prop.9: vertex cover";
    e "q_chain" "R(x,y), R(y,z)" NPC "Prop.10: 3SAT";
    e "q_sj1_rats" "A(x), R(x,y), R(y,z), R(z,x)" NPC "Ex.11/Lemma 50: triad of R-atoms";
    e "q_ac_conf" "A(x), R(x,y), R(z,y), C(z)" P "Prop.12: confluence flow";
    e "q_a_3perm" "A(x), R(x,y), R(y,z), R(z,y)" P "Prop.13: modified flow";
  ]

let sec5 =
  [
    e "q_sj1_triangle" "R(x,y), R(y,z), R(z,x)" NPC "Ex.20/Lemma 21: sj variation of triangle";
    e "q_sj2_triangle" "R(x,y), R(y,z), T(z,x)" NPC "Ex.20/Lemma 21";
    e "q_sj3_triangle" "R(x,y), S(y,z), R(z,x)" NPC "Ex.20/Lemma 21";
    e "q_sj1_brats" "B(y), R(x,y), A(x), R(z,x), R(y,z)" NPC "Lemma 51: triad of R-atoms";
    e "q_ex22" "R(x,y), R(z,y), R(z,w), R(x,w)" P "Ex.22: non-minimal, equivalent to R(x,y)";
  ]

let chain_expansions =
  [
    e "q_chain" "R(x,y), R(y,z)" NPC "Prop.10";
    e "q_a_chain" "A(x), R(x,y), R(y,z)" NPC "Lemma 53";
    e "q_b_chain" "R(x,y), B(y), R(y,z)" NPC "Lemma 52";
    e "q_c_chain" "R(x,y), R(y,z), C(z)" NPC "Lemma 53";
    e "q_ab_chain" "A(x), R(x,y), B(y), R(y,z)" NPC "Lemma 53";
    e "q_bc_chain" "R(x,y), B(y), R(y,z), C(z)" NPC "Lemma 53";
    e "q_ac_chain" "A(x), R(x,y), R(y,z), C(z)" NPC "Lemma 54";
    e "q_abc_chain" "A(x), R(x,y), B(y), R(y,z), C(z)" NPC "Lemma 54";
  ]

let sec7 =
  [
    e "q_cfp" "R(x,y), H^x(x,z), R(z,y)" NPC "Sec.7.2: confluence with exogenous path (≡ qvc)";
    e "q_perm" "R(x,y), R(y,x)" P "Prop.33: witness counting";
    e "q_a_perm" "A(x), R(x,y), R(y,x)" P "Prop.33: bipartite vertex cover";
    e "q_ab_perm" "A(x), R(x,y), R(y,x), B(y)" NPC "Prop.34: bound permutation";
    e "z1" "R(x,x), S(x,y), R(y,y)" NPC "Sec.7.4: binary path (Thm.28)";
    e "z2" "R(x,x), S(x,y), R(y,z)" NPC "Sec.7.4: binary path (Thm.28)";
    e "z3" "R(x,x), R(x,y), A(y)" P "Prop.36";
  ]

let sec8 =
  [
    e "q_3chain" "R(x,y), R(y,z), R(z,w)" NPC "Prop.38";
    e "q_4chain" "R(x,y), R(y,z), R(z,w), R(w,u)" NPC "Prop.38 (k=4)";
    e "q_ac_3conf" "A(x), R(x,y), R(z,y), R(z,w), C(w)" NPC "Prop.39: Max 2SAT";
    e "q_ts_3conf" "T^x(x,y), R(x,y), R(z,y), R(z,w), S^x(z,w)" P "Prop.41";
    e "q_as_3conf" "A(x), R(x,y), R(z,y), R(z,w), S^x(z,w)" Open "Sec.8.2 open problem";
    e "q_ac_3cc" "A(x), R(x,y), R(y,z), R(w,z), C(w)" NPC "Prop.42";
    e "q_as_3cc" "A(x), R(x,y), R(y,z), R(w,z), S(w,z)" NPC "Prop.42";
    e "q_c_3cc" "R(x,y), R(y,z), R(w,z), C(w)" NPC "Prop.43: Max 2SAT";
    e "q_s_3cc" "R(x,y), R(y,z), R(w,z), S(w,z)" Open "Sec.8.3 open problem";
    e "q_swx_3perm" "S(w,x), R(x,y), R(y,z), R(z,y)" P "Prop.44";
    e "q_sxy_3perm" "S^x(x,y), R(x,y), R(y,z), R(z,y)" NPC "Prop.45";
    e "q_ac_3perm" "A(x), R(x,y), R(y,z), R(z,y), C(z)" NPC "Prop.46";
    e "q_ab_3perm" "A(x), R(x,y), B(y), R(y,z), R(z,y)" NPC "Prop.46";
    e "q_sxybc_3perm" "S(x,y), R(x,y), B(y), R(y,z), R(z,y), C(z)" NPC "Prop.46";
    e "q_asxy_3perm" "A(x), S(x,y), R(x,y), R(y,z), R(z,y)" Open "Sec.8.4 open problem";
    e "q_sxyb_3perm" "S(x,y), R(x,y), B(y), R(y,z), R(z,y)" Open "Sec.8.4 open problem";
    e "q_sxyc_3perm" "S(x,y), R(x,y), R(y,z), R(z,y), C(z)" Open "Sec.8.4 open problem";
    e "z4" "R(x,x), R(x,y), S(x,y), R(y,y)" NPC "Prop.47";
    e "z5" "A(x), R(x,y), R(y,z), R(z,z)" NPC "Prop.47: Max 2SAT";
    e "z6" "A(x), R(x,y), R(y,y), R(y,z), C(z)" Open "Sec.8.5 open problem";
    e "z7" "A(x), R(x,y), R(y,x), R(y,y)" Open "Sec.8.5 open problem";
  ]

let all =
  sec2 @ sec3 @ sec5
  @ List.tl chain_expansions (* q_chain already in sec3 *)
  @ sec7 @ sec8

let find name = List.find (fun en -> en.name = name) all

let figure5 =
  List.map find [ "q_chain"; "q_ac_chain"; "q_ac_conf"; "q_cfp"; "q_perm"; "q_a_perm"; "q_ab_perm"; "z3" ]

let expected_to_string = function P -> "PTIME" | NPC -> "NP-complete" | Open -> "open"
