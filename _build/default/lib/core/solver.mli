(** The resilience solver front end.

    Mirrors the classification pipeline: minimize the query, split it into
    connected components (ρ is the minimum over components, Lemma 14),
    normalize domination per component (Prop 18), then dispatch each
    component to the algorithm its {!Classify} verdict licenses:

    - PTIME verdicts run the matching polynomial algorithm — the generic
      linear flow ({!Flow}), one of the specialized solvers ({!Special}),
      or the trivial case;
    - NP-complete / open / unknown verdicts run the exact branch-and-bound
      solver ({!Exact}).

    A handful of PTIME classes whose polynomial algorithm the paper only
    sketches for the general (pseudo-linear, non-linear) case fall back to
    {!Exact} with an explanatory note — the answer is still correct, just
    not guaranteed polynomial (see DESIGN.md §7). *)

open Res_db

type trace = {
  component : Res_cq.Query.t;  (** normalized component actually solved *)
  algorithm : string;
  solution : Solution.t;
}

val solve : Database.t -> Res_cq.Query.t -> Solution.t
(** ρ(D, q) with a minimum contingency set. *)

val solve_traced : Database.t -> Res_cq.Query.t -> Solution.t * trace list

val value : Database.t -> Res_cq.Query.t -> int option
(** [Some ρ] or [None] (unbreakable). *)
