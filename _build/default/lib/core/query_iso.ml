open Res_cq

module SM = Map.Make (String)

(* Backtracking: match atoms of q1 to atoms of q2 bijectively, maintaining
   bijections on variables and on relation names (exogeneity must agree). *)
let isomorphic (q1 : Query.t) (q2 : Query.t) =
  if List.length (Query.atoms q1) <> List.length (Query.atoms q2) then None
  else begin
  let a1 = Query.atoms q1 and a2 = Query.atoms q2 in
  let rec assoc_vars vmap vrev args1 args2 =
    match (args1, args2) with
    | [], [] -> Some (vmap, vrev)
    | v1 :: r1, v2 :: r2 -> begin
      match (SM.find_opt v1 vmap, SM.find_opt v2 vrev) with
      | Some w, _ when w <> v2 -> None
      | _, Some w when w <> v1 -> None
      | _ -> assoc_vars (SM.add v1 v2 vmap) (SM.add v2 v1 vrev) r1 r2
    end
    | _ -> None
  in
  let result = ref None in
  let rec go vmap vrev rmap rrev remaining1 remaining2 =
    match remaining1 with
    | [] ->
      result := Some (SM.bindings rmap, SM.bindings vmap);
      true
    | (a : Atom.t) :: rest1 ->
      List.exists
        (fun (b : Atom.t) ->
          Atom.arity a = Atom.arity b
          && Query.is_exogenous q1 a.rel = Query.is_exogenous q2 b.rel
          && (match (SM.find_opt a.rel rmap, SM.find_opt b.rel rrev) with
             | Some r, _ when r <> b.rel -> false
             | _, Some r when r <> a.rel -> false
             | _ -> true)
          &&
          match assoc_vars vmap vrev a.args b.args with
          | None -> false
          | Some (vmap', vrev') ->
            go vmap' vrev'
              (SM.add a.rel b.rel rmap)
              (SM.add b.rel a.rel rrev)
              rest1
              (List.filter (fun c -> not (Atom.equal b c)) remaining2))
        remaining2
  in
  if go SM.empty SM.empty SM.empty SM.empty a1 a2 then !result else None
  end

let find_iso q1 q2 = isomorphic q1 q2
let isomorphic q1 q2 = isomorphic q1 q2 <> None
let find_template_iso s q = find_iso (Parser.query s) q

let matches_template q s = isomorphic q (Parser.query s)

let mirror (q : Query.t) =
  let exo = List.filter (Query.is_exogenous q) (Query.relations q) in
  let atoms =
    List.map
      (fun (a : Atom.t) ->
        match a.args with [ x; y ] -> Atom.make a.rel [ y; x ] | _ -> a)
      (Query.atoms q)
  in
  Query.make ~exo atoms

let matches_template_upto_mirror q s = matches_template q s || matches_template (mirror q) s
