(** Domination between relations and query normalization.

    Dominated relations never need to contribute to minimum contingency
    sets and are therefore marked exogenous before any further analysis:

    - sj-free domination (paper Definition 3 / Proposition 4): endogenous
      atoms [A], [B] with [var(A) ⊂ var(B)];
    - self-join domination (Definition 16 / Proposition 18): a positionwise
      mapping [f : [arity A] → [arity B]] such that {e every} [B]-atom has a
      matching [A]-atom.  Example 11 shows why the sj-free notion is
      unsound with self-joins. *)

open Res_cq

val dominates : Query.t -> string -> string -> bool
(** [dominates q a b]: relation [a] dominates relation [b] per
    Definition 16 (which specializes to Definition 3 when [b] occurs
    once).  Both must be endogenous and distinct. *)

val dominated_relations : Query.t -> string list
(** Relations dominated by some other endogenous relation. *)

val normalize : Query.t -> Query.t
(** Iteratively mark dominated relations exogenous until fixpoint (the
    paper's "normal form").  Mutually-dominating relations are broken by
    name order, keeping one endogenous. *)
