(** Linear and pseudo-linear queries (paper Sections 2.4 and 5.3).

    A query is {e linear} if its atoms admit an order in which every
    variable occupies a contiguous block — exactly the shape that supports
    the natural network-flow algorithm of [31].

    A query is {e pseudo-linear} if its {e endogenous} atoms are connected
    linearly (Theorem 25): grouping endogenous atoms by equal variable
    sets, there is an order G1 … Gn such that every inner group separates
    the groups on its two sides in the dual hypergraph (Figure 9). *)

open Res_cq

val linear_order : Query.t -> Atom.t list option
(** A witness atom ordering with the contiguity property, if one exists. *)

val is_linear : Query.t -> bool

val endogenous_groups : Query.t -> Atom.t list list
(** Endogenous atoms grouped by equal variable sets (paper's G1 … Gn). *)

val pseudo_linear_order : Query.t -> Atom.t list list option
(** A valid linear arrangement of the endogenous groups, if any. *)

val is_pseudo_linear : Query.t -> bool
