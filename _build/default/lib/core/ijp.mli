(** Independent Join Paths (paper Section 9 and Appendix C).

    An IJP is a database witnessing a query's hardness "template"
    (Definition 48): two incomparable tuples of one relation, each in
    exactly one full-size witness, no endogenous sub-tuples, exogenous
    symmetry, and the or-property on resilience (removing either endpoint,
    or both, drops ρ by exactly one).

    This module provides: the five-condition checker, the automated search
    of Appendix C.2 (enumerate canonical databases, then all partitions of
    their constants — Example 62), and the generalized Vertex-Cover
    reduction of Figure 8 built from any IJP. *)

open Res_db

type violation = {
  condition : int;  (** 1–5, per Definition 48 *)
  message : string;
}

val check :
  Database.t -> Res_cq.Query.t -> Database.fact -> Database.fact -> (unit, violation) result
(** Do the two facts (of the same endogenous relation) make the database an
    IJP for the query? *)

val find_pair :
  Database.t -> Res_cq.Query.t -> (Database.fact * Database.fact) option
(** First endpoint pair satisfying all five conditions, if any. *)

val is_ijp : Database.t -> Res_cq.Query.t -> bool

val canonical_database : Res_cq.Query.t -> copy:int -> Database.t
(** The frozen query: one fact per atom, constants [Tag(copy, var)]. *)

val partitions : 'a list -> 'a list list Seq.t
(** All set partitions (Bell enumeration, restricted-growth order). *)

val composable :
  Database.t -> Res_cq.Query.t -> a:Database.fact -> b:Database.fact -> bool
(** Does the generalized VC reduction built from this IJP preserve
    [|E|·(c−1) + VC(G)] on small probe graphs (K3, P4)?  Our experiments
    show the literal Definition 48 admits databases for {e PTIME} queries
    (e.g. qACconf) whose induced reduction diverges — so hardness use of an
    IJP should insist on composability (see EXPERIMENTS.md). *)

val search :
  ?max_joins:int ->
  ?max_partitions:int ->
  ?strict:bool ->
  Res_cq.Query.t ->
  (Database.t * Database.fact * Database.fact) option
(** Appendix C.2: for [k = 1 .. max_joins] canonical copies, enumerate
    partitions of the constants, identify, and test.  [max_partitions]
    (default 200_000) bounds the enumeration per [k].  With [strict]
    (default false), only {!composable} IJPs are accepted. *)

val count_partitions_tried : Res_cq.Query.t -> max_joins:int -> int
(** Size of the search space actually enumerated (for the Example 62
    narrative: Bell(9) = 21147 for the triangle query at 3 joins). *)

val vc_instance :
  Database.t ->
  Res_cq.Query.t ->
  a:Database.fact ->
  b:Database.fact ->
  graph:Res_graph.Vertex_cover.graph ->
  Database.t
(** The generalized VC reduction (Figure 8): one fresh copy of the IJP per
    edge, endpoint tuples identified per vertex (the copy's [a]-constants
    are renamed to the source vertex's constants, [b]-constants to the
    target's).  Conjecture 49 predicts ρ = |E|·(c−1) + VC(G) where c is
    the IJP's resilience; the bench validates this empirically.
    @raise Invalid_argument if the constants of [a] and [b] overlap. *)
