open Res_cq

(* All functions [1..arity_a] -> [1..arity_b], as int arrays (0-based). *)
let all_mappings arity_a arity_b =
  let rec go i acc =
    if i = arity_a then [ acc ]
    else List.concat_map (fun j -> go (i + 1) (acc @ [ j ])) (List.init arity_b Fun.id)
  in
  go 0 []

let dominates q a b =
  a <> b
  && (not (Query.is_exogenous q a))
  && (not (Query.is_exogenous q b))
  && Query.atoms_of_rel q a <> []
  && Query.atoms_of_rel q b <> []
  &&
  let arity_a = Query.arity_of q a and arity_b = Query.arity_of q b in
  let a_atoms = Query.atoms_of_rel q a and b_atoms = Query.atoms_of_rel q b in
  List.exists
    (fun f ->
      List.for_all
        (fun (gb : Atom.t) ->
          let gb_args = Array.of_list gb.args in
          List.exists
            (fun (ha : Atom.t) ->
              List.for_all2 (fun ai fi -> ai = gb_args.(fi)) ha.args f)
            a_atoms)
        b_atoms)
    (all_mappings arity_a arity_b)

let dominated_relations q =
  let rels = Query.relations q in
  List.filter (fun b -> List.exists (fun a -> dominates q a b) rels) rels

let rec normalize q =
  let rels = List.sort compare (Query.relations q) in
  let victim =
    List.find_opt (fun b -> List.exists (fun a -> dominates q a b) rels) rels
  in
  match victim with
  | None -> q
  | Some b -> normalize (Query.mark_exogenous q [ b ])
