(** Query isomorphism: equality up to renaming of variables and of relation
    symbols (preserving arity, exogeneity, and the atom structure).

    Used to match a query against the paper's named templates when the
    classification of Section 8 depends on the exact query shape (e.g.
    qTS3conf vs qAC3conf vs the open qAS3conf). *)

open Res_cq

val isomorphic : Query.t -> Query.t -> bool

val matches_template : Query.t -> string -> bool
(** [matches_template q s] parses [s] (see {!Res_cq.Parser}) and tests
    isomorphism. *)

val find_iso : Query.t -> Query.t -> ((string * string) list * (string * string) list) option
(** [find_iso q1 q2] is [(rel_map, var_map)] renaming [q1] onto [q2]. *)

val find_template_iso :
  string -> Query.t -> ((string * string) list * (string * string) list) option
(** [find_template_iso s q]: iso from the parsed template to [q]; the
    rel_map translates template relation names to the query's names. *)

val mirror : Query.t -> Query.t
(** Reverse the argument order of every binary atom.  Resilience is
    invariant under this global symmetry, so template matching should try
    both a template and its mirror. *)

val matches_template_upto_mirror : Query.t -> string -> bool
