open Res_cq

type confluence = {
  shared : Atom.var;
  position : int;
  ends : Atom.var * Atom.var;
}

type two_atom_pattern =
  | Chain of Atom.var
  | Confluence of confluence
  | Permutation of Atom.var * Atom.var
  | Rep_shared

let self_join q =
  if not (Query.is_ssj q) then invalid_arg "Patterns.self_join: query is not single-self-join";
  match Query.repeated_relations q with
  | [] -> None
  | [ r ] -> Some (r, Query.atoms_of_rel q r)
  | _ -> assert false

let has_unary_path q =
  match self_join q with
  | Some (r, atoms) -> Query.arity_of q r = 1 && List.length atoms >= 2
  | None -> false

let share_var (a : Atom.t) (b : Atom.t) =
  List.exists (fun v -> List.mem v (Atom.vars b)) (Atom.vars a)

let has_binary_path q =
  match self_join q with
  | None -> false
  | Some (r, atoms) ->
    Query.arity_of q r = 2
    &&
    (* Connectivity of the R-atoms under variable sharing. *)
    let atoms = Array.of_list atoms in
    let n = Array.length atoms in
    let uf = Res_graph.Union_find.create n in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if share_var atoms.(i) atoms.(j) then Res_graph.Union_find.union uf i j
      done
    done;
    Res_graph.Union_find.count uf > 1

let has_path q = has_unary_path q || has_binary_path q

let two_atom_pattern q =
  match self_join q with
  | Some (_, [ a1; a2 ]) when share_var a1 a2 -> begin
    if Atom.has_repeated_var a1 || Atom.has_repeated_var a2 then Some Rep_shared
    else begin
      match (a1.args, a2.args) with
      | [ x1; y1 ], [ x2; y2 ] ->
        if x1 = y2 && y1 = x2 then Some (Permutation (x1, y1))
        else if y1 = x2 then Some (Chain y1)
        else if x1 = y2 then Some (Chain x1)
        else if x1 = x2 then Some (Confluence { shared = x1; position = 0; ends = (y1, y2) })
        else if y1 = y2 then Some (Confluence { shared = y1; position = 1; ends = (x1, x2) })
        else None
      | _ -> None
    end
  end
  | _ -> None

let permutation_is_bound q ~x ~y =
  let endo = Query.endogenous_atoms q in
  let contains_only a v w = List.mem v (Atom.vars a) && not (List.mem w (Atom.vars a)) in
  List.exists (fun a -> contains_only a x y) endo
  && List.exists (fun a -> contains_only a y x) endo

let confluence_has_exo_path q { shared; ends = (e1, e2); _ } =
  let h = Hypergraph.of_query q in
  Hypergraph.var_path_avoiding h ~src:e1 ~dst:e2 ~avoid:[ shared ]

let k_chain q =
  match self_join q with
  | Some (r, atoms) when Query.arity_of q r = 2 && List.length atoms >= 2 ->
    let k = List.length atoms in
    (* Try to thread the atoms into R(v1,v2), ..., R(vk,vk+1) with all vi
       distinct. *)
    let rec extend chain_vars used remaining =
      match remaining with
      | [] -> true
      | _ ->
        let last = List.hd chain_vars in
        List.exists
          (fun (a : Atom.t) ->
            match a.args with
            | [ u; v ] when u = last && (not (List.mem v chain_vars)) && not (List.mem a used) ->
              extend (v :: chain_vars) (a :: used) (List.filter (fun b -> not (Atom.equal a b)) remaining)
            | _ -> false)
          remaining
    in
    let starts =
      List.filter_map
        (fun (a : Atom.t) -> match a.args with [ u; v ] when u <> v -> Some (a, u, v) | _ -> None)
        atoms
    in
    if
      List.exists
        (fun (a, u, v) ->
          extend [ v; u ] [ a ] (List.filter (fun b -> not (Atom.equal a b)) atoms))
        starts
    then Some k
    else None
  | _ -> None
