(** Triads (paper Definition 5) and their detection.

    A triad is a set of three endogenous atoms {S0, S1, S2} such that for
    every pair there is a path between them in the dual hypergraph using no
    variable of the third atom.  Queries containing a triad have
    NP-complete resilience — for sj-free queries by [14] (Lemma 6), and
    with self-joins by Theorem 24 of this paper.

    Detection should run on the domination-normal form of the query
    (see {!Domination.normalize}). *)

open Res_cq

val find : Query.t -> (Atom.t * Atom.t * Atom.t) option
val has_triad : Query.t -> bool
