(** Structural self-join patterns of ssj binary queries (paper Sections
    6–8): paths, chains, confluences, permutations, repeated variables
    (REP), boundedness and exogenous confluence paths.

    All detectors expect a minimal, connected query (use
    {!Res_cq.Homomorphism.minimize} first); most are meaningful on the
    domination-normal form. *)

open Res_cq

type confluence = {
  shared : Atom.var;  (** the join variable (y in R(x,y),R(z,y)) *)
  position : int;  (** 0 if the atoms join on their first attribute, 1 if on their second *)
  ends : Atom.var * Atom.var;  (** the two non-shared variables *)
}

type two_atom_pattern =
  | Chain of Atom.var  (** R(x,y),R(y,z): join in different attributes *)
  | Confluence of confluence  (** R(x,y),R(z,y): join in the same attribute *)
  | Permutation of Atom.var * Atom.var  (** R(x,y),R(y,x) *)
  | Rep_shared  (** an atom with a repeated variable, sharing a variable
                    with the other R-atom (the z3 family) *)

val self_join : Query.t -> (string * Atom.t list) option
(** The repeated relation of an ssj query and its atoms, if the query has a
    self-join.  [None] for sj-free queries.
    @raise Invalid_argument if the query is not single-self-join. *)

val has_unary_path : Query.t -> bool
(** Theorem 27: the repeated relation is unary with ≥ 2 distinct atoms. *)

val has_binary_path : Query.t -> bool
(** Theorem 28 (operationalized): the repeated relation's atoms do not all
    connect to one another through shared variables — equivalently some two
    R-atoms consecutive along the query have disjoint variables. *)

val has_path : Query.t -> bool

val two_atom_pattern : Query.t -> two_atom_pattern option
(** The join pattern of the two R-atoms, when the query has exactly two
    R-atoms sharing at least one variable (Figure 5). *)

val permutation_is_bound : Query.t -> x:Atom.var -> y:Atom.var -> bool
(** Section 7.3 criterion: some endogenous atom contains [x] but not [y]
    and some endogenous atom contains [y] but not [x]. *)

val confluence_has_exo_path : Query.t -> confluence -> bool
(** Proposition 32 criterion: a path between the two confluence ends that
    avoids the shared variable. *)

val k_chain : Query.t -> int option
(** [Some k] if the repeated relation's atoms form a k-chain
    R(v1,v2), R(v2,v3), …, R(vk,vk+1) over distinct variables
    (Section 8.1). *)
