(** Deletion propagation with source side-effects (paper Section 1).

    For a non-Boolean query q(y) and an output tuple t in q(D), the
    minimum source side-effect is the fewest endogenous input tuples to
    delete so that t disappears from the result.  As the paper notes, this
    "immediately translates" to resilience: bind the head variables to t's
    constants and compute the resilience of the resulting Boolean query.

    The binding uses the selection-pushing trick of the paper's footnote 3,
    realized without rewriting relations: each bound variable v = c gets a
    fresh {e exogenous} unary anchor atom whose instance is exactly {c} —
    anchors force the valuation but can never enter contingency sets. *)

open Res_db

val bind :
  Res_cq.Query.t ->
  (Res_cq.Atom.var * Value.t) list ->
  Database.t ->
  Res_cq.Query.t * Database.t
(** [bind q head db]: the Boolean query and extended database whose
    witnesses are exactly the valuations of [q] agreeing with [head].
    @raise Invalid_argument if a head variable does not occur in [q]. *)

val output_tuples :
  Database.t -> Res_cq.Query.t -> head:Res_cq.Atom.var list -> Database.tuple list
(** The distinct result tuples q(D) projected onto the head variables. *)

val side_effect :
  Database.t ->
  Res_cq.Query.t ->
  head:(Res_cq.Atom.var * Value.t) list ->
  Solution.t
(** Minimum source side-effect for deleting the given output tuple, with a
    witness deletion set. *)

val side_effects_all :
  Database.t ->
  Res_cq.Query.t ->
  head:Res_cq.Atom.var list ->
  (Database.tuple * Solution.t) list
(** [side_effect] for every output tuple. *)
