(** Responsibility of a tuple for a query answer (Meliou et al. [31], the
    causality notion the paper builds on).

    A fact t is a {e counterfactual cause} of D ⊨ q under a contingency
    Γ (t ∉ Γ) if D − Γ ⊨ q but D − Γ − {t} ⊭ q.  Its responsibility is
    1/(1+|Γ|) for the smallest such Γ, and 0 if no contingency exists.
    Computing it is NP-hard in general (harder than resilience, as the
    paper remarks); this exact implementation enumerates the witnesses
    containing t and solves one restricted hitting-set instance per
    potential surviving witness. *)

open Res_db

val min_contingency : Database.t -> Res_cq.Query.t -> Database.fact -> int option
(** Size of the smallest contingency under which the fact is
    counterfactual; [None] if the fact is not a cause at all. *)

val responsibility : Database.t -> Res_cq.Query.t -> Database.fact -> float
(** 1/(1+|Γ|), or 0.0 when not a cause.  A fact in every witness has
    responsibility 1. *)

val ranking : Database.t -> Res_cq.Query.t -> (Database.fact * float) list
(** All endogenous facts with non-zero responsibility, most responsible
    first — the paper's motivating "explanation" use case. *)
