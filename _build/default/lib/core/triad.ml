open Res_cq

let find q =
  let h = Hypergraph.of_query q in
  let n = Hypergraph.n_atoms h in
  let all_atoms = Array.init n (fun i -> Hypergraph.atom h i) in
  let endo = List.filter (fun i -> not (Query.is_exogenous q all_atoms.(i).Atom.rel)) (List.init n Fun.id) in
  let robust i j k =
    (* Path from atom i to atom j avoiding every variable of atom k. *)
    Hypergraph.path_avoiding h ~src:i ~dst:j ~avoid:(Atom.vars all_atoms.(k))
  in
  let rec pick3 = function
    | [] -> None
    | i :: rest ->
      let rec pick2 = function
        | [] -> pick3 rest
        | j :: rest2 ->
          let rec pick1 = function
            | [] -> pick2 rest2
            | k :: rest3 ->
              if robust i j k && robust j k i && robust i k j then
                Some (all_atoms.(i), all_atoms.(j), all_atoms.(k))
              else pick1 rest3
          in
          pick1 rest2
      in
      pick2 rest
  in
  pick3 endo

let has_triad q = find q <> None
