(** Executable hardness reductions — the gadget constructions behind the
    paper's NP-completeness proofs, as database builders.

    Each builder maps a source instance (a graph for Vertex Cover, a CNF for
    3SAT / Max-2SAT, or a resilience instance for query-to-query reductions)
    to a resilience instance [(D, k)] such that the source is a yes-instance
    iff [(D, k) ∈ RES(q)].  The test suite verifies this equivalence
    end-to-end by solving the produced instances with {!Exact} — the
    strongest executable form of the proofs.

    Where our gadget bookkeeping differs from the paper's (e.g. our qchain
    variable cycles have 2m tuples, giving kψ = (n+5)m rather than the
    paper's (2n+5)m), the reduction property is unchanged; EXPERIMENTS.md
    records the deltas. *)

open Res_db

type instance = {
  db : Database.t;
  query : Res_cq.Query.t;
  k : int;  (** the decision threshold: yes-instance ⇔ ρ(D, q) ≤ k *)
  description : string;
}

(** {1 Vertex-cover reductions} *)

val vc_to_qvc : Res_graph.Vertex_cover.graph -> k:int -> instance
(** Proposition 9: graphs are qvc databases; ρ = minimum vertex cover. *)

val vc_to_unary_path : Res_graph.Vertex_cover.graph -> k:int -> Res_cq.Query.t -> instance
(** Theorem 27: reduce VC to any minimal ssj query with two unary R-atoms.
    Implements the t(v,a,b) construction of Appendix A.9. *)

val vc_to_binary_path : Res_graph.Vertex_cover.graph -> k:int -> Res_cq.Query.t -> instance
(** Theorem 28: the binary-path construction, with R-path equivalence
    classes (u ≡ v iff joined by R-atoms). *)

(** {1 3SAT reductions} *)

val sat3_to_chain :
  ?with_a:bool -> ?with_b:bool -> ?with_c:bool -> Res_sat.Cnf.t -> instance
(** Proposition 10 (Figure 10) and its unary expansions (Lemmas 52–54,
    Figures 11/12): variable cycles of 2m R-tuples, 9-tuple clause gadgets
    (triangle + spikes + connectors).  kψ = (n+5)m.  The [with_*] flags
    populate the unary relations A/B/C of the corresponding expansion. *)

val sat3_to_triangle : Res_sat.Cnf.t -> instance
(** Proposition 56 (Figure 16): RGB-triangle gadget for q△.
    Variable gadgets are cycles of 12m solid edges (+12m dotted closures);
    clause triangles are formed by vertex identification.  kψ = 6mn. *)

val sat3_to_tripod : Res_sat.Cnf.t -> instance
(** Proposition 57: compose {!sat3_to_triangle} with the q△ → qT mapping
    (A = ⟨ab⟩, B = ⟨bc⟩, C = ⟨ca⟩, W = all triples). *)

val sat3_to_abperm : Res_sat.Cnf.t -> instance
(** Proposition 34 (Figure 14): bound-permutation gadget for qABperm.
    kψ = (3n+5)m. *)

val sat3_to_sxy3perm : Res_sat.Cnf.t -> instance
(** Proposition 45: gadget for qSxy3perm-R with full pairs F(a,b) and
    plain pairs P(a,b). *)

(** {1 Query-to-query reductions} *)

val triangle_to_tripod : Database.t -> instance
(** Proposition 57's instance mapping: D over {R,S,T} ↦ D′ over
    {A,B,C,W} preserving ρ. *)

val triangle_to_triad : Database.t -> Res_cq.Query.t -> instance
(** Lemma 6 / Theorem 24: map a q△ instance to an instance of any query
    with a triad, via the 7-way variable partition (Equation 6).
    [k] is ρ(q△, D), so resilience is preserved exactly. *)

val sjfree_to_sj_variation :
  Database.t -> base:Res_cq.Query.t -> target:Res_cq.Query.t -> instance
(** Lemma 21: lift an instance of an sj-free query to its self-join
    variation by tagging every value with the variable it instantiates.
    The atom variable lists of [base] and [target] must align. *)

val abperm_to_ac3perm : Database.t -> instance
(** Proposition 46: qABperm instance ↦ qAC3perm-R instance with
    A′ = primed copies and R′ = R ∪ {(a′,a)}. *)

(** Proposition 39's Max-2SAT gadget (Figure 15) is {e not} reproduced:
    the figure's crossover construction is under-specified in the
    available text (the accounting for doubly-satisfied 2-clauses is
    load-bearing and cannot be recovered unambiguously).  EXPERIMENTS.md
    documents the substitution: qAC3conf hardness is exhibited through the
    classifier (Props 39/40) and exact-solver scaling, and the Max-2SAT
    machinery itself is exercised by {!Res_sat.Max2sat}. *)
