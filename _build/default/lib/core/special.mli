(** The paper's specialized PTIME solvers — the "trickier" flow and
    matching constructions that the generic linear flow does not cover.

    Each solver is written against the paper's template query; callers
    (normally {!Solver}) pass the concrete relation names obtained from a
    template isomorphism.  Every returned contingency set is re-verified
    against the query before being returned. *)

open Res_db

val solve_perm : r:string -> Database.t -> Res_cq.Query.t -> Solution.t
(** Proposition 33, qperm :- R(x,y),R(y,x): one tuple per two-way pair. *)

val solve_a_perm : a:string -> r:string -> Database.t -> Res_cq.Query.t -> Solution.t
(** Proposition 33, qAperm :- A(x),R(x,y),R(y,x): minimum vertex cover in a
    bipartite graph (König). *)

val solve_z3 : r:string -> a:string -> Database.t -> Res_cq.Query.t -> Solution.t
(** Proposition 36, z3 :- R(x,x),R(x,y),A(y): off-diagonal R-tuples are
    never needed; bipartite vertex cover between the diagonal R-tuples and
    the A-tuples. *)

val solve_a3perm : a:string -> r:string -> Database.t -> Res_cq.Query.t -> Solution.t
(** Proposition 13, qA3perm-R :- A(x),R(x,y),R(y,z),R(z,y): flow over
    A-tuples and two-way pairs; one-way R-tuples are dominated and get
    infinite weight. *)

val solve_swx3perm : s:string -> r:string -> Database.t -> Res_cq.Query.t -> Solution.t
(** Proposition 44, qSwx3perm-R :- S(w,x),R(x,y),R(y,z),R(z,y): like
    Prop 13 but S does not dominate one-way R-tuples, which therefore
    become unit-capacity edges of their own. *)

val solve_ts3conf :
  t_rel:string -> r:string -> s_rel:string -> Database.t -> Res_cq.Query.t -> Solution.t
(** Proposition 41, qTS3conf :- T^x(x,y),R(x,y),R(z,y),R(z,w),S^x(z,w):
    tuples R(a,b) with both T(a,b) and S(a,b) present are forced into every
    contingency set; the rest reduces to the standard linear flow. *)

val solve_witness_bipartite : Database.t -> Res_cq.Query.t -> Solution.t option
(** Instance-level polynomial algorithm: enumerate witnesses, collapse
    "twin" facts (tuples occurring in exactly the same witnesses are
    interchangeable — e.g. the two orientations of a permutation pair),
    force singleton witnesses, and solve the remaining size-2 witnesses as
    bipartite vertex cover (König).  Returns [None] when a collapsed
    witness still has more than two units or the conflict graph is not
    bipartite.  Covers the paper's 2-endogenous-group PTIME queries
    (qrats-style after normalization, unbound permutations with exogenous
    guards, qAperm, z3) uniformly. *)

val solve_unbound_permutation : r:string -> Database.t -> Res_cq.Query.t -> Solution.t option
(** Proposition 35 case 1: the general unbound permutation.  The two
    R-atoms R(x,y), R(y,x) appear in every witness as a two-way pair
    {c,d}, and deleting either orientation kills every witness of the
    pair.  Encode the pair as a single unit: replace the R-atoms by
    Pair^x(x,p), Pay(p) over a fresh pair relation (Pair holds (c,⟨cd⟩)
    for every witness-active orientation, Pay one unit tuple per pair) and
    run the standard linear flow on the rewritten query.  Applicable when
    the rewritten query is linear and every non-R atom containing the
    second permutation variable is exogenous; [None] otherwise. *)
