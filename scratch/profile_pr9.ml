open Res_db
module Flowbuild = Res_col.Flowbuild

let t0 = ref (Unix.gettimeofday ())
let lap name =
  let t = Unix.gettimeofday () in
  Printf.printf "%-34s %8.3fs\n%!" name (t -. !t0);
  t0 := t

let column_of (a : Res_cq.Atom.t) (data : Res_col.Instance.rel_data) v =
  match a.args with
  | [ w ] when w = v -> data.col0
  | [ w0; _ ] when w0 = v -> data.col0
  | [ _; w1 ] when w1 = v -> data.col1
  | _ -> invalid_arg "column_of"

let keys_for a data vars tids =
  match vars with
  | [] -> Array.make (Array.length tids) 0
  | [ v ] ->
    let col = column_of a data v in
    Array.map (fun tid -> col.(tid)) tids
  | [ v; w ] ->
    let cv = column_of a data v and cw = column_of a data w in
    Array.map (fun tid -> (cv.(tid) lsl 31) lor cw.(tid)) tids
  | _ -> invalid_arg "keys_for"

let () =
  let n = 1_000_000 in
  let k = n / 10 in
  let q = Res_cq.Parser.query "A(x), R(x,y), R(z,y), C(z)" in
  let db =
    Database.union
      (Db_gen.bipartite ~seed:29 ~left:k ~right:k ~edges:(n - (2 * k)) ~rel:"R")
      (Database.union
         (Db_gen.unary ~count:k ~rel:"A")
         (Database.of_rows [ ("C", List.init k (fun i -> [ Value.i i ])) ]))
  in
  lap "db build";
  let atoms = Array.of_list (Res_cq.Query.atoms q) in
  let bounds = Resilience.Flow.boundaries atoms in
  match Eval.view db q with
  | None -> print_endline "kernels off; skipping step-by-step"
  | Some view ->
  lap "Eval.view";
  let m = Array.length atoms in
  let layers =
    Array.init m (fun p ->
        let a : Res_cq.Atom.t = atoms.(p) in
        let data = Eval.view_data view a.rel in
        let live = Eval.view_live view a.rel in
        let tids = live in
        let kk = Array.length tids in
        let exo = Bytes.make kk '\000' in
        {
          Flowbuild.tids;
          src_keys = keys_for a data bounds.(p) tids;
          dst_keys = keys_for a data bounds.(p + 1) tids;
          exo;
        })
  in
  lap "layers (incl view_live)";
  let t = Flowbuild.build layers in
  lap "Flowbuild.build";
  let flow = Flowbuild.max_flow t in
  Printf.printf "flow=%d\n%!" flow;
  lap "max_flow";
  let cut = Flowbuild.min_cut_tuples t in
  lap "min_cut_tuples";
  let tagged =
    List.map (fun (p, tid) -> (atoms.(p).Res_cq.Atom.rel, tid)) cut
    |> List.sort_uniq (fun (r1, t1) (r2, t2) ->
           let c = String.compare r1 r2 in
           if c <> 0 then c else Int.compare t1 t2)
  in
  let with_facts =
    List.map (fun (rel, tid) -> (Eval.view_fact view rel tid, rel, tid)) tagged
    |> List.sort (fun (f, _, _) (g, _, _) ->
           let c = String.compare f.Database.rel g.Database.rel in
           if c <> 0 then c
           else List.compare Value.compare f.Database.tuple g.Database.tuple)
  in
  let cut_facts = List.map (fun (f, _, _) -> f) with_facts in
  lap "facts + sort";
  let contingency = Resilience.Tuning.minimalize db q cut_facts in
  lap "Tuning.minimalize";
  Printf.printf "contingency=%d\n%!" (List.length contingency);
  let by_rel = Hashtbl.create 4 in
  List.iter
    (fun (rel, tid) ->
      let cur = try Hashtbl.find by_rel rel with Not_found -> [] in
      Hashtbl.replace by_rel rel (tid :: cur))
    (List.map (fun (_, rel, tid) -> (rel, tid)) with_facts);
  let removals =
    Hashtbl.fold
      (fun rel tids acc ->
        let arr = Array.of_list tids in
        Array.sort Int.compare arr;
        (rel, arr) :: acc)
      by_rel []
  in
  lap "group removals";
  let s = Eval.view_sat_removed view removals in
  Printf.printf "sat=%b\n%!" s;
  lap "view_sat_removed"

let () =
  t0 := Unix.gettimeofday ();
  let n = 1_000_000 in
  let k = n / 10 in
  let q = Res_cq.Parser.query "A(x), R(x,y), R(z,y), C(z)" in
  let db =
    Database.union
      (Db_gen.bipartite ~seed:29 ~left:k ~right:k ~edges:(n - (2 * k)) ~rel:"R")
      (Database.union
         (Db_gen.unary ~count:k ~rel:"A")
         (Database.of_rows [ ("C", List.init k (fun i -> [ Value.i i ])) ]))
  in
  lap "db build 2";
  (match Resilience.Flow.solve db q with
  | Some (Resilience.Solution.Finite (v, _)) -> Printf.printf "rho=%d\n%!" v
  | _ -> print_endline "?");
  lap "real Flow.solve kernel"
